//! The schedule-source abstraction: who decides *what arrives when*.
//!
//! The Workload Manager (`executor::manager_loop`) runs one iteration per
//! second, but the decision of which requests that second contains is
//! delegated to a [`ScheduleSource`]. The default [`ScriptSchedule`]
//! reproduces the paper's live generation — `rate` arrivals per second,
//! spread by the current `ArrivalDist`, types sampled from the current
//! mixture — while `bp-replay` substitutes a recorded schedule to re-run a
//! captured workload deterministically.
//!
//! Transaction types are sampled here, at generation time, and pinned onto
//! each request. That makes the full schedule (arrival offset, type, phase)
//! a pure function of the seed and the script: two same-seed runs produce
//! byte-identical schedules no matter how worker threads interleave.

use bp_util::clock::{Micros, MICROS_PER_SEC};
use bp_util::rng::Rng;

use crate::controller::ControlState;
use crate::queue::ScheduledRequest;
use crate::rate::PhaseScript;

/// One second's plan from a schedule source.
#[derive(Debug, Default)]
pub struct Window {
    /// Requests to enqueue; offsets are µs relative to the window start.
    pub requests: Vec<ScheduledRequest>,
    /// New queue dispatch-gate rate (requests/s), when it changed this
    /// window. `Some(0.0)` removes the gate.
    pub gate_tps: Option<f64>,
    /// Schedule exhausted: the manager stops the run after this window.
    pub done: bool,
}

/// A source of per-second arrival windows driving the executor.
pub trait ScheduleSource: Send {
    /// Plan the window starting at `second * 1s` of run time. `behind_us` is
    /// how far wall-clock has slipped past that boundary when the manager
    /// got to it (sources may report it as lag). Sources read — and for
    /// phase transitions, update — the shared control state.
    fn plan(&mut self, second: u64, behind_us: Micros, state: &ControlState) -> Window;

    /// Whether the manager should wait for the queue backlog to drain before
    /// closing when the source reports `done`. Live scripts keep the
    /// historical close-immediately semantics; replay waits so the recorded
    /// tail is not dropped.
    fn drain_on_done(&self) -> bool {
        false
    }
}

/// The live generator: turns the phase script (plus any runtime overrides
/// held in `ControlState`) into arrivals, exactly as §2.2.1 describes.
pub struct ScriptSchedule {
    script: PhaseScript,
    unlimited_rate: f64,
    rng: Rng,
    /// Fractional-arrival accumulator: preserves "the exact number of
    /// requests configured" over time for non-integer rates.
    carry: f64,
    last_phase: Option<usize>,
}

impl ScriptSchedule {
    pub fn new(script: PhaseScript, unlimited_rate: f64, seed: u64) -> ScriptSchedule {
        ScriptSchedule {
            script,
            unlimited_rate,
            rng: Rng::new(seed ^ 0xA5A5_5A5A),
            carry: 0.0,
            last_phase: None,
        }
    }
}

impl ScheduleSource for ScriptSchedule {
    fn plan(&mut self, second: u64, _behind_us: Micros, state: &ControlState) -> Window {
        let t_run = second * MICROS_PER_SEC;
        let mut w = Window::default();

        // Phase bookkeeping.
        match self.script.phase_at(t_run) {
            Some((idx, phase)) => {
                let new_phase = self.last_phase != Some(idx);
                state.apply_phase(
                    idx,
                    phase.rate,
                    phase.arrival,
                    phase.weights.as_deref(),
                    phase.think_time_us,
                    new_phase,
                );
                if new_phase {
                    w.gate_tps = Some(state.rate().arrivals_per_second(self.unlimited_rate));
                    self.last_phase = Some(idx);
                }
            }
            None => {
                w.done = true;
                return w;
            }
        }

        // Generate this second's arrivals (unless paused / disabled).
        if !state.is_paused() {
            let per_sec = state.rate().arrivals_per_second(self.unlimited_rate);
            let exact = per_sec + self.carry;
            let n = exact.floor() as usize;
            self.carry = exact - n as f64;
            if n > 0 {
                let offsets = state.arrival().offsets(n, &mut self.rng);
                let mixture = state.mixture();
                let phase = state.phase_idx().min(u16::MAX as usize) as u16;
                w.requests = offsets
                    .into_iter()
                    .map(|offset_us| ScheduledRequest {
                        offset_us,
                        txn_type: mixture.sample(&mut self.rng).min(u16::MAX as usize) as u16,
                        phase,
                    })
                    .collect();
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixture::Mixture;
    use crate::rate::{ArrivalDist, Phase, Rate};

    fn state_for(script: &PhaseScript) -> std::sync::Arc<ControlState> {
        let first = script.phases.first();
        let rate = first.map(|p| p.rate).unwrap_or(Rate::Disabled);
        let mixture = first
            .and_then(|p| p.weights.clone())
            .and_then(|w| Mixture::new(w).ok())
            .unwrap_or_else(|| Mixture::new(vec![50.0, 50.0]).unwrap());
        ControlState::new(rate, mixture, 50_000.0)
    }

    fn collect(script: PhaseScript, seed: u64) -> Vec<(u64, ScheduledRequest)> {
        let state = state_for(&script);
        let mut src = ScriptSchedule::new(script, 50_000.0, seed);
        let mut out = Vec::new();
        for second in 0.. {
            let w = src.plan(second, 0, &state);
            out.extend(w.requests.iter().map(|&r| (second, r)));
            if w.done {
                break;
            }
        }
        out
    }

    fn two_phase_script() -> PhaseScript {
        PhaseScript::new(vec![
            Phase::new(Rate::Limited(150.0), 2.0).with_weights(vec![70.0, 30.0]),
            Phase::new(Rate::Limited(250.0), 1.0)
                .with_weights(vec![10.0, 90.0])
                .with_arrival(ArrivalDist::Exponential),
        ])
    }

    #[test]
    fn same_seed_schedules_are_identical() {
        let a = collect(two_phase_script(), 7);
        let b = collect(two_phase_script(), 7);
        assert_eq!(a.len(), 150 * 2 + 250);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = collect(two_phase_script(), 7);
        let b = collect(two_phase_script(), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn phases_and_types_are_pinned() {
        let reqs = collect(two_phase_script(), 42);
        let phase1: Vec<_> = reqs.iter().filter(|(s, _)| *s < 2).collect();
        let phase2: Vec<_> = reqs.iter().filter(|(s, _)| *s >= 2).collect();
        assert!(phase1.iter().all(|(_, r)| r.phase == 0));
        assert!(phase2.iter().all(|(_, r)| r.phase == 1));
        // 70/30 vs 10/90 mixtures show up in the pinned types.
        let share0 = |rs: &[&(u64, ScheduledRequest)]| {
            rs.iter().filter(|(_, r)| r.txn_type == 0).count() as f64 / rs.len() as f64
        };
        assert!((share0(&phase1) - 0.7).abs() < 0.1, "phase 1 share {}", share0(&phase1));
        assert!((share0(&phase2) - 0.1).abs() < 0.1, "phase 2 share {}", share0(&phase2));
    }

    #[test]
    fn gate_set_only_on_phase_change() {
        let script = two_phase_script();
        let state = state_for(&script);
        let mut src = ScriptSchedule::new(script, 50_000.0, 1);
        assert_eq!(src.plan(0, 0, &state).gate_tps, Some(150.0));
        assert_eq!(src.plan(1, 0, &state).gate_tps, None);
        assert_eq!(src.plan(2, 0, &state).gate_tps, Some(250.0));
        let end = src.plan(3, 0, &state);
        assert!(end.done && end.requests.is_empty());
    }

    #[test]
    fn paused_state_skips_generation() {
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 5.0)]);
        let state = state_for(&script);
        let mut src = ScriptSchedule::new(script, 50_000.0, 1);
        state.pause();
        let w = src.plan(0, 0, &state);
        assert!(w.requests.is_empty() && !w.done);
        state.resume();
        assert_eq!(src.plan(1, 0, &state).requests.len(), 100);
    }
}
