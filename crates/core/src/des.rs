//! Deterministic simulated runs: drive a [`SimDbms`] through a phase script
//! on virtual time.
//!
//! This is the fast path for the shape experiments (steps, sinusoid, peak,
//! tunnel) and the substrate the game's autopilot/physics tests run on:
//! a full multi-minute scenario simulates in microseconds, deterministically.

use bp_util::clock::MICROS_PER_SEC;

use crate::mixture::Mixture;
use crate::model::SimDbms;
use crate::rate::PhaseScript;
use crate::workload::TransactionType;

/// One sample of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSample {
    /// Time since run start (seconds).
    pub t_s: f64,
    /// Requested (target) rate at this instant.
    pub requested: f64,
    /// Delivered throughput.
    pub delivered: f64,
    /// Modeled mean latency (µs).
    pub latency_us: f64,
}

/// Result of a simulated run.
#[derive(Debug, Clone, Default)]
pub struct SimRun {
    pub samples: Vec<SimSample>,
    pub dt_s: f64,
}

impl SimRun {
    /// Delivered series, one value per sample.
    pub fn delivered(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.delivered).collect()
    }

    pub fn requested(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.requested).collect()
    }

    /// Aggregate delivered throughput per whole second.
    pub fn delivered_per_second(&self) -> Vec<f64> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let seconds = (self.samples.last().unwrap().t_s).ceil() as usize;
        let mut sums = vec![0.0; seconds.max(1)];
        let mut counts = vec![0usize; seconds.max(1)];
        for s in &self.samples {
            let idx = (s.t_s as usize).min(sums.len() - 1);
            sums[idx] += s.delivered;
            counts[idx] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(s, c)| if *c > 0 { s / *c as f64 } else { 0.0 })
            .collect()
    }
}

/// Simulate a phase script against a model DBMS.
///
/// `types` provides read-only flags and relative costs so phase mixtures
/// translate into write-share / cost inputs of the capacity model.
pub fn simulate_script(
    dbms: &mut SimDbms,
    script: &PhaseScript,
    types: &[TransactionType],
    unlimited_rate: f64,
    dt_s: f64,
) -> SimRun {
    let total_us = script.total_duration_us();
    let steps = (total_us as f64 / (dt_s * MICROS_PER_SEC as f64)).ceil() as usize;
    let default_mixture = Mixture::default_of(types);
    let mut samples = Vec::with_capacity(steps);
    let mut current_mixture = default_mixture.clone();
    let mut last_phase = usize::MAX;

    for step in 0..steps {
        let t_us = (step as f64 * dt_s * MICROS_PER_SEC as f64) as u64;
        let Some((idx, phase)) = script.phase_at(t_us) else { break };
        if idx != last_phase {
            last_phase = idx;
            if let Some(w) = &phase.weights {
                if let Ok(m) = Mixture::new(w.clone()) {
                    current_mixture = m;
                }
            }
        }
        let requested = phase.rate.arrivals_per_second(unlimited_rate);
        let write_share = current_mixture.write_share(types);
        let mean_cost = current_mixture.mean_cost(types);
        let delivered = dbms.tick(requested, write_share, mean_cost, dt_s);
        let latency_us = dbms.model.latency_us(requested, write_share, mean_cost);
        samples.push(SimSample {
            t_s: t_us as f64 / MICROS_PER_SEC as f64,
            requested,
            delivered,
            latency_us,
        });
    }
    SimRun { samples, dt_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CapacityModel;
    use crate::rate::{Phase, Rate};

    fn types() -> Vec<TransactionType> {
        vec![
            TransactionType::new("r", 50.0, true),
            TransactionType::new("w", 50.0, false),
        ]
    }

    fn quiet(name: &str) -> SimDbms {
        let mut m = CapacityModel::by_name(name).unwrap();
        m.jitter = 0.0;
        SimDbms::new(m, 1)
    }

    #[test]
    fn tracks_constant_rate_under_capacity() {
        let mut dbms = quiet("mysql");
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(400.0), 10.0)]);
        let run = simulate_script(&mut dbms, &script, &types(), 1e5, 0.1);
        let tail = &run.delivered()[run.samples.len() - 10..];
        for v in tail {
            assert!((v - 400.0).abs() < 10.0, "{v}");
        }
    }

    #[test]
    fn saturates_at_capacity() {
        let mut dbms = quiet("derby");
        let cap = dbms.model.capacity(0.5, 1.0);
        let script = PhaseScript::new(vec![Phase::new(Rate::Unlimited, 20.0)]);
        let run = simulate_script(&mut dbms, &script, &types(), 1e5, 0.1);
        let last = *run.delivered().last().unwrap();
        assert!(last < cap, "delivered {last} must stay below capacity {cap}");
        assert!(last > cap * 0.3);
    }

    #[test]
    fn mixture_change_boosts_read_heavy_throughput() {
        let mut dbms = quiet("mysql");
        // Saturating load; write-heavy then read-only mixture.
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Unlimited, 20.0).with_weights(vec![0.0, 100.0]),
            Phase::new(Rate::Unlimited, 20.0).with_weights(vec![100.0, 0.0]),
        ]);
        let run = simulate_script(&mut dbms, &script, &types(), 1e5, 0.1);
        let per_sec = run.delivered_per_second();
        let write_heavy = per_sec[15..19].iter().sum::<f64>() / 4.0;
        let read_only = per_sec[35..39].iter().sum::<f64>() / 4.0;
        assert!(
            read_only > write_heavy * 1.6,
            "read-only {read_only} vs write-heavy {write_heavy}"
        );
    }

    #[test]
    fn per_second_aggregation() {
        let mut dbms = quiet("oracle");
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 3.0)]);
        let run = simulate_script(&mut dbms, &script, &types(), 1e5, 0.05);
        assert_eq!(run.delivered_per_second().len(), 3);
    }

    #[test]
    fn deterministic_runs() {
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(500.0), 5.0)]);
        let mut a = SimDbms::new(CapacityModel::mysql_like(), 9);
        let mut b = SimDbms::new(CapacityModel::mysql_like(), 9);
        let ra = simulate_script(&mut a, &script, &types(), 1e5, 0.1);
        let rb = simulate_script(&mut b, &script, &types(), 1e5, 0.1);
        assert_eq!(ra.samples, rb.samples);
    }
}
