//! Closed-loop SLO admission control.
//!
//! Everything else in the testbed is *open-loop*: an operator (or a
//! phase script) sets a rate and hopes the system holds its latency
//! objective. The [`SloCore`] closes the loop: given a target —
//! `p99 <= N`, `p50 <= N`, or *max sustainable throughput* — a
//! background control thread samples a sliding-window latency/throughput
//! snapshot each tick and adjusts the offered rate, so the testbed finds
//! and holds its own operating point.
//!
//! Two control laws are available:
//!
//! * **AIMD** (default): additive increase while the objective is met,
//!   multiplicative decrease proportional to the violation
//!   (`rate *= max(backoff, limit/observed)`) when it is not — the
//!   classic TCP-style shape, stable and fast to converge.
//! * **PID**: rate is scaled by `kp·e + ki·∫e + kd·Δe` on the relative
//!   error, with the integral clamped for anti-windup. Smoother near the
//!   operating point, more knobs to mis-tune.
//!
//! The loop cooperates with the `bp-chaos` circuit breaker: an *open*
//! breaker forces a hard multiplicative backoff (`breaker_backoff`) and
//! resets the integral term; a *half-open* breaker holds the rate so
//! recovery probes are judged at a stable offered load. After the
//! breaker re-closes, normal additive probing resumes from the
//! backed-off rate.
//!
//! [`SloCore`] is deliberately pure — no clock, no RNG, no I/O — so the
//! adjustment sequence is a function of the observation sequence alone
//! (same seed + same config ⇒ identical adjustments, the replay-style
//! purity guarantee). The impure shell ([`slo_loop`]) lives at the edge.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bp_chaos::BreakerState;
use bp_obs::{MetricsBuf, MetricsSource, Severity};
use bp_util::sync::Mutex;

use crate::controller::Controller;
use crate::rate::Rate;

/// What the control loop steers toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloTarget {
    /// Keep windowed p99 latency at or below this many µs.
    P99BelowUs(u64),
    /// Keep windowed p50 latency at or below this many µs.
    P50BelowUs(u64),
    /// Find the highest rate the engine sustains (delivered ≈ offered).
    MaxThroughput,
}

impl SloTarget {
    /// Parse a target kind plus latency limit (µs; ignored for
    /// `max-throughput`).
    pub fn parse(kind: &str, limit_us: u64) -> Option<SloTarget> {
        match kind.trim().to_ascii_lowercase().as_str() {
            "p99" => Some(SloTarget::P99BelowUs(limit_us)),
            "p50" => Some(SloTarget::P50BelowUs(limit_us)),
            "max-throughput" | "max_throughput" | "throughput" => Some(SloTarget::MaxThroughput),
            _ => None,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            SloTarget::P99BelowUs(_) => "p99",
            SloTarget::P50BelowUs(_) => "p50",
            SloTarget::MaxThroughput => "max-throughput",
        }
    }

    /// The latency limit in µs (0 for `max-throughput`).
    pub fn limit_us(&self) -> u64 {
        match self {
            SloTarget::P99BelowUs(us) | SloTarget::P50BelowUs(us) => *us,
            SloTarget::MaxThroughput => 0,
        }
    }
}

/// Which control law adjusts the rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlLaw {
    Aimd,
    Pid,
}

impl ControlLaw {
    pub fn parse(s: &str) -> Option<ControlLaw> {
        match s.trim().to_ascii_lowercase().as_str() {
            "aimd" => Some(ControlLaw::Aimd),
            "pid" => Some(ControlLaw::Pid),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            ControlLaw::Aimd => "aimd",
            ControlLaw::Pid => "pid",
        }
    }
}

/// Full SLO controller configuration (the `<slo>` config block /
/// `POST /slo` body).
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    pub target: SloTarget,
    pub law: ControlLaw,
    /// Sliding window the sensor reads, seconds.
    pub window_s: usize,
    /// Control-loop period, µs.
    pub tick_us: u64,
    /// Rate floor: the loop never starves the workload entirely.
    pub min_rate: f64,
    /// Rate ceiling (`f64::INFINITY` = effectively unlimited).
    pub max_rate: f64,
    /// Offered rate at loop start.
    pub initial_rate: f64,
    /// AIMD additive probe step, tx/s per tick.
    pub additive_step: f64,
    /// Floor of the multiplicative-decrease factor (0 < backoff < 1).
    pub backoff: f64,
    /// Multiplicative factor applied while the breaker is open.
    pub breaker_backoff: f64,
    /// PID gains on the relative error.
    pub kp: f64,
    pub ki: f64,
    pub kd: f64,
    /// Hold (don't adjust) until the window holds this many samples.
    pub min_samples: u64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            target: SloTarget::P99BelowUs(50_000),
            law: ControlLaw::Aimd,
            window_s: 3,
            tick_us: 200_000,
            min_rate: 10.0,
            max_rate: f64::INFINITY,
            initial_rate: 100.0,
            additive_step: 50.0,
            backoff: 0.7,
            breaker_backoff: 0.5,
            kp: 0.5,
            ki: 0.1,
            kd: 0.0,
            min_samples: 20,
        }
    }
}

/// One sensor reading fed into [`SloCore::tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloObservation {
    pub p50_us: u64,
    pub p99_us: u64,
    /// Delivered throughput over the window, tx/s.
    pub throughput: f64,
    /// Completions inside the window.
    pub sample_count: u64,
    pub breaker_open: bool,
    pub breaker_half_open: bool,
}

/// What a tick decided to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    Increase,
    Decrease,
    /// Hard multiplicative backoff because the circuit breaker is open.
    BreakerBackoff,
    Hold,
}

impl Adjustment {
    pub fn name(&self) -> &'static str {
        match self {
            Adjustment::Increase => "increase",
            Adjustment::Decrease => "decrease",
            Adjustment::BreakerBackoff => "breaker_backoff",
            Adjustment::Hold => "hold",
        }
    }
}

/// Output of one control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloDecision {
    /// New offered rate, tx/s (already clamped).
    pub rate: f64,
    pub adjustment: Adjustment,
    /// Relative error term: positive = headroom, negative = violation.
    pub error: f64,
}

/// The pure control law. Feed observations in, get rate decisions out;
/// identical observation sequences produce identical decision sequences.
#[derive(Debug, Clone)]
pub struct SloCore {
    cfg: SloConfig,
    rate: f64,
    /// PID integral of the relative error (anti-windup clamped).
    integral: f64,
    last_error: f64,
    /// AIMD decrease cooldown: after a multiplicative decrease the sliding
    /// window keeps showing the pre-decrease tail for up to `window_s`,
    /// and reacting to that stale data again every tick would compound one
    /// violation into a geometric collapse. Violations observed while this
    /// is nonzero hold instead of decreasing.
    hold_ticks: u32,
}

/// Anti-windup clamp on the PID integral term.
const INTEGRAL_CLAMP: f64 = 5.0;
/// Per-tick bound on the PID multiplicative delta.
const PID_DELTA_CLAMP: f64 = 0.5;

impl SloCore {
    pub fn new(cfg: SloConfig) -> SloCore {
        let rate = cfg.initial_rate.clamp(cfg.min_rate, cfg.max_rate);
        SloCore { cfg, rate, integral: 0.0, last_error: 0.0, hold_ticks: 0 }
    }

    /// Ticks until the sliding window no longer contains samples from
    /// before the last decrease.
    fn window_flush_ticks(&self) -> u32 {
        let window_us = self.cfg.window_s as u64 * 1_000_000;
        window_us.div_ceil(self.cfg.tick_us.max(1)).min(u32::MAX as u64) as u32
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }

    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Run one control tick against an observation.
    pub fn tick(&mut self, obs: &SloObservation) -> SloDecision {
        if obs.breaker_open {
            // The engine is sick enough that the admission controller
            // tripped: back off hard and forget accumulated PID state —
            // the pre-incident error history is no longer meaningful.
            self.integral = 0.0;
            self.last_error = 0.0;
            // When the breaker closes again the window will still show the
            // incident's tail; hold through it instead of decreasing more.
            self.hold_ticks = self.window_flush_ticks();
            self.rate = (self.rate * self.cfg.breaker_backoff).max(self.cfg.min_rate);
            return SloDecision {
                rate: self.rate,
                adjustment: Adjustment::BreakerBackoff,
                error: -1.0,
            };
        }
        if obs.breaker_half_open {
            // Hold steady while recovery probes are in flight so their
            // outcome reflects a stable offered load.
            return SloDecision { rate: self.rate, adjustment: Adjustment::Hold, error: 0.0 };
        }
        if obs.sample_count < self.cfg.min_samples {
            return SloDecision { rate: self.rate, adjustment: Adjustment::Hold, error: 0.0 };
        }

        let decision = match self.cfg.target {
            SloTarget::P99BelowUs(limit) => self.latency_step(limit, obs.p99_us),
            SloTarget::P50BelowUs(limit) => self.latency_step(limit, obs.p50_us),
            SloTarget::MaxThroughput => self.throughput_step(obs.throughput),
        };
        self.rate = decision.rate.clamp(self.cfg.min_rate, self.cfg.max_rate);
        SloDecision { rate: self.rate, ..decision }
    }

    fn latency_step(&mut self, limit_us: u64, observed_us: u64) -> SloDecision {
        let limit = limit_us.max(1) as f64;
        let observed = observed_us as f64;
        // Positive = headroom below the limit, negative = violation.
        let error = (limit - observed) / limit;
        match self.cfg.law {
            ControlLaw::Aimd => {
                if error >= 0.0 {
                    // Headroom means the window has flushed the last
                    // incident: probing may resume immediately.
                    self.hold_ticks = 0;
                    SloDecision {
                        rate: self.rate + self.cfg.additive_step,
                        adjustment: Adjustment::Increase,
                        error,
                    }
                } else if self.hold_ticks > 0 {
                    self.hold_ticks -= 1;
                    SloDecision { rate: self.rate, adjustment: Adjustment::Hold, error }
                } else {
                    // Proportional multiplicative decrease: a 2× latency
                    // overshoot halves the rate (floored at `backoff` per
                    // tick so one noisy window can't collapse the run),
                    // then hold until the window has flushed.
                    self.hold_ticks = self.window_flush_ticks();
                    let factor = (limit / observed.max(1.0)).max(self.cfg.backoff);
                    SloDecision {
                        rate: self.rate * factor,
                        adjustment: Adjustment::Decrease,
                        error,
                    }
                }
            }
            ControlLaw::Pid => {
                self.integral = (self.integral + error).clamp(-INTEGRAL_CLAMP, INTEGRAL_CLAMP);
                let derivative = error - self.last_error;
                self.last_error = error;
                let delta = (self.cfg.kp * error
                    + self.cfg.ki * self.integral
                    + self.cfg.kd * derivative)
                    .clamp(-PID_DELTA_CLAMP, PID_DELTA_CLAMP);
                SloDecision {
                    rate: self.rate * (1.0 + delta),
                    adjustment: if delta >= 0.0 { Adjustment::Increase } else { Adjustment::Decrease },
                    error,
                }
            }
        }
    }

    /// Max-throughput search (always AIMD-shaped): probe upward while the
    /// engine keeps up with the offered rate, pull back proportionally
    /// when delivered throughput falls behind.
    fn throughput_step(&mut self, throughput: f64) -> SloDecision {
        let error = throughput / self.rate.max(1.0) - 1.0;
        if throughput >= 0.9 * self.rate {
            SloDecision {
                rate: self.rate + self.cfg.additive_step,
                adjustment: Adjustment::Increase,
                error,
            }
        } else {
            let factor = (throughput / self.rate.max(1.0)).clamp(self.cfg.backoff, 1.0);
            SloDecision { rate: self.rate * factor, adjustment: Adjustment::Decrease, error }
        }
    }
}

/// Atomic f64 stored as bits.
fn store_f64(cell: &AtomicU64, v: f64) {
    cell.store(v.to_bits(), Ordering::Relaxed);
}

fn load_f64(cell: &AtomicU64) -> f64 {
    f64::from_bits(cell.load(Ordering::Relaxed))
}

/// Shared state of one workload's SLO controller: configuration, the
/// loop-cancellation epoch, and the live gauges/counters the control API
/// and `/metrics` read. One persistent handle lives on each
/// [`Controller`] (shared by all of its clones).
pub struct SloHandle {
    workload: String,
    cfg: Mutex<Option<SloConfig>>,
    active: AtomicBool,
    /// Bumped on every start/stop; a running loop exits when its epoch
    /// is stale, so re-`POST /slo` cleanly replaces the old loop.
    epoch: AtomicU64,
    rate_bits: AtomicU64,
    error_bits: AtomicU64,
    throughput_bits: AtomicU64,
    observed_us: AtomicU64,
    window_samples: AtomicU64,
    increases: AtomicU64,
    decreases: AtomicU64,
    holds: AtomicU64,
    breaker_backoffs: AtomicU64,
    ticks: AtomicU64,
}

impl SloHandle {
    pub fn new(workload: &str) -> SloHandle {
        SloHandle {
            workload: workload.to_string(),
            cfg: Mutex::new(None),
            active: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            rate_bits: AtomicU64::new(0f64.to_bits()),
            error_bits: AtomicU64::new(0f64.to_bits()),
            throughput_bits: AtomicU64::new(0f64.to_bits()),
            observed_us: AtomicU64::new(0),
            window_samples: AtomicU64::new(0),
            increases: AtomicU64::new(0),
            decreases: AtomicU64::new(0),
            holds: AtomicU64::new(0),
            breaker_backoffs: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    pub fn workload(&self) -> &str {
        &self.workload
    }

    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub fn config(&self) -> Option<SloConfig> {
        self.cfg.lock().clone()
    }

    /// Current offered rate as last set by the loop.
    pub fn current_rate(&self) -> f64 {
        load_f64(&self.rate_bits)
    }

    /// Last relative error term.
    pub fn error(&self) -> f64 {
        load_f64(&self.error_bits)
    }

    /// Last windowed throughput the loop observed.
    pub fn observed_throughput(&self) -> f64 {
        load_f64(&self.throughput_bits)
    }

    /// Last windowed latency the loop steered on (µs).
    pub fn observed_us(&self) -> u64 {
        self.observed_us.load(Ordering::Relaxed)
    }

    pub fn window_samples(&self) -> u64 {
        self.window_samples.load(Ordering::Relaxed)
    }

    pub fn increases(&self) -> u64 {
        self.increases.load(Ordering::Relaxed)
    }

    pub fn decreases(&self) -> u64 {
        self.decreases.load(Ordering::Relaxed)
    }

    pub fn holds(&self) -> u64 {
        self.holds.load(Ordering::Relaxed)
    }

    pub fn breaker_backoffs(&self) -> u64 {
        self.breaker_backoffs.load(Ordering::Relaxed)
    }

    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Arm for a new loop run: store config, reset the live counters, and
    /// return the new loop epoch. (Counters reset so `GET /slo/status`
    /// after a re-POST describes the new loop, not the old one.)
    pub(crate) fn arm(&self, cfg: &SloConfig) -> u64 {
        *self.cfg.lock() = Some(cfg.clone());
        store_f64(&self.rate_bits, cfg.initial_rate.clamp(cfg.min_rate, cfg.max_rate));
        store_f64(&self.error_bits, 0.0);
        store_f64(&self.throughput_bits, 0.0);
        self.observed_us.store(0, Ordering::Relaxed);
        self.window_samples.store(0, Ordering::Relaxed);
        self.increases.store(0, Ordering::Relaxed);
        self.decreases.store(0, Ordering::Relaxed);
        self.holds.store(0, Ordering::Relaxed);
        self.breaker_backoffs.store(0, Ordering::Relaxed);
        self.ticks.store(0, Ordering::Relaxed);
        self.active.store(true, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Cancel any running loop (it notices the stale epoch on its next
    /// tick) and mark the controller inactive.
    pub(crate) fn disarm(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.active.store(false, Ordering::SeqCst);
    }

    pub(crate) fn on_tick(&self, obs: &SloObservation, d: &SloDecision) {
        store_f64(&self.rate_bits, d.rate);
        store_f64(&self.error_bits, d.error);
        store_f64(&self.throughput_bits, obs.throughput);
        let cfg = self.cfg.lock();
        let observed = match cfg.as_ref().map(|c| c.target) {
            Some(SloTarget::P50BelowUs(_)) => obs.p50_us,
            _ => obs.p99_us,
        };
        drop(cfg);
        self.observed_us.store(observed, Ordering::Relaxed);
        self.window_samples.store(obs.sample_count, Ordering::Relaxed);
        match d.adjustment {
            Adjustment::Increase => self.increases.fetch_add(1, Ordering::Relaxed),
            Adjustment::Decrease => self.decreases.fetch_add(1, Ordering::Relaxed),
            Adjustment::Hold => self.holds.fetch_add(1, Ordering::Relaxed),
            Adjustment::BreakerBackoff => self.breaker_backoffs.fetch_add(1, Ordering::Relaxed),
        };
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }
}

impl MetricsSource for SloHandle {
    fn collect(&self, buf: &mut MetricsBuf) {
        let labels = [("workload", self.workload.as_str())];
        buf.gauge(
            "bp_slo_active",
            "1 while a closed-loop SLO controller is driving the rate.",
            &labels,
            if self.is_active() { 1.0 } else { 0.0 },
        );
        let (target_us, kind) = match self.config().map(|c| c.target) {
            Some(t) => (t.limit_us() as f64, t.kind()),
            None => (0.0, "none"),
        };
        buf.gauge(
            "bp_slo_target_us",
            "Configured latency objective in µs (0 for max-throughput).",
            &[("workload", self.workload.as_str()), ("target", kind)],
            target_us,
        );
        buf.gauge(
            "bp_slo_current_rate",
            "Offered rate the SLO loop last set, tx/s.",
            &labels,
            self.current_rate(),
        );
        buf.gauge(
            "bp_slo_error",
            "Relative error term (positive = headroom, negative = violation).",
            &labels,
            self.error(),
        );
        buf.gauge(
            "bp_slo_observed_us",
            "Windowed latency percentile the loop last steered on, µs.",
            &labels,
            self.observed_us() as f64,
        );
        buf.gauge(
            "bp_slo_observed_throughput",
            "Windowed delivered throughput the loop last observed, tx/s.",
            &labels,
            self.observed_throughput(),
        );
        for (dir, n) in [
            ("increase", self.increases()),
            ("decrease", self.decreases()),
            ("hold", self.holds()),
        ] {
            buf.counter(
                "bp_slo_adjustments_total",
                "Control-loop adjustments, by direction.",
                &[("workload", self.workload.as_str()), ("dir", dir)],
                n as f64,
            );
        }
        buf.counter(
            "bp_slo_breaker_backoffs_total",
            "Hard backoffs forced by an open circuit breaker.",
            &labels,
            self.breaker_backoffs() as f64,
        );
        buf.counter(
            "bp_slo_ticks_total",
            "Control-loop ticks executed.",
            &labels,
            self.ticks() as f64,
        );
    }
}

/// The impure shell: runs [`SloCore`] against live window snapshots on a
/// detached thread until the epoch goes stale, the handle deactivates,
/// or the run stops. Spawned by [`Controller::start_slo`].
pub(crate) fn slo_loop(controller: Controller, handle: Arc<SloHandle>, cfg: SloConfig, epoch: u64) {
    let clock = controller.stats().clock().clone();
    let journal = controller.journal().clone();
    let mut core = SloCore::new(cfg.clone());
    loop {
        clock.sleep(cfg.tick_us);
        if handle.epoch() != epoch || !handle.is_active() || controller.is_stopped() {
            return;
        }
        let snap = controller.stats().window_snapshot(cfg.window_s);
        let (open, half_open) = match controller.breaker() {
            Some(b) => {
                let s = b.state();
                (s == BreakerState::Open, s == BreakerState::HalfOpen)
            }
            None => (false, false),
        };
        let obs = SloObservation {
            p50_us: snap.p50_us,
            p99_us: snap.p99_us,
            throughput: snap.throughput,
            sample_count: snap.count,
            breaker_open: open,
            breaker_half_open: half_open,
        };
        let before = core.rate();
        let d = core.tick(&obs);
        if d.adjustment != Adjustment::Hold {
            // Holds are the steady state; journaling only the actual rate
            // decisions keeps the ring about *changes* (the doctor matches
            // these against latency onsets).
            let sev = match d.adjustment {
                Adjustment::BreakerBackoff => Severity::Warn,
                _ => Severity::Info,
            };
            journal.emit_with(sev, "slo", "slo_decision", || {
                (
                    format!(
                        "slo {}: rate {before:.1} -> {:.1} (error {:+.2})",
                        d.adjustment.name(),
                        d.rate,
                        d.error,
                    ),
                    vec![
                        ("adjustment", d.adjustment.name().to_string()),
                        ("before", format!("{before:.1}")),
                        ("after", format!("{:.1}", d.rate)),
                    ],
                )
            });
        }
        controller.set_rate(Rate::Limited(d.rate));
        handle.on_tick(&obs, &d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(p99: u64, tput: f64, n: u64) -> SloObservation {
        SloObservation {
            p50_us: p99 / 2,
            p99_us: p99,
            throughput: tput,
            sample_count: n,
            breaker_open: false,
            breaker_half_open: false,
        }
    }

    #[test]
    fn target_parsing_round_trips() {
        assert_eq!(SloTarget::parse("p99", 5_000), Some(SloTarget::P99BelowUs(5_000)));
        assert_eq!(SloTarget::parse("P50", 100), Some(SloTarget::P50BelowUs(100)));
        assert_eq!(SloTarget::parse("max-throughput", 0), Some(SloTarget::MaxThroughput));
        assert_eq!(SloTarget::parse("bogus", 0), None);
        for t in [SloTarget::P99BelowUs(7), SloTarget::P50BelowUs(9), SloTarget::MaxThroughput] {
            assert_eq!(SloTarget::parse(t.kind(), t.limit_us()), Some(t));
        }
        assert_eq!(ControlLaw::parse("pid"), Some(ControlLaw::Pid));
        assert_eq!(ControlLaw::parse("AIMD"), Some(ControlLaw::Aimd));
        assert_eq!(ControlLaw::parse("fuzzy"), None);
    }

    #[test]
    fn aimd_increases_with_headroom_decreases_on_violation() {
        let cfg = SloConfig {
            target: SloTarget::P99BelowUs(10_000),
            initial_rate: 1_000.0,
            additive_step: 100.0,
            ..SloConfig::default()
        };
        let mut core = SloCore::new(cfg);
        // Well under the limit: additive increase.
        let d = core.tick(&obs(5_000, 900.0, 500));
        assert_eq!(d.adjustment, Adjustment::Increase);
        assert!((d.rate - 1_100.0).abs() < 1e-9);
        assert!(d.error > 0.0);
        // 2× violation: proportional multiplicative decrease (halve),
        // floored at `backoff`.
        let d = core.tick(&obs(20_000, 900.0, 500));
        assert_eq!(d.adjustment, Adjustment::Decrease);
        assert!(d.error < 0.0);
        assert!((d.rate - 1_100.0 * 0.7).abs() < 1e-9, "floored at backoff: {}", d.rate);
        // A further violation right away is stale-window data: hold.
        let d2 = core.tick(&obs(11_000, 900.0, 500));
        assert_eq!(d2.adjustment, Adjustment::Hold);
        assert!((d2.rate - d.rate).abs() < 1e-9);
        // Headroom clears the cooldown and probing resumes at once.
        let d3 = core.tick(&obs(5_000, 900.0, 500));
        assert_eq!(d3.adjustment, Adjustment::Increase);
        // ...and after the hold the next genuine violation decreases again.
        let d4 = core.tick(&obs(11_000, 900.0, 500));
        assert_eq!(d4.adjustment, Adjustment::Decrease);
        assert!((d4.rate - d3.rate * (10_000.0 / 11_000.0)).abs() < 1e-9);
    }

    #[test]
    fn decrease_cooldown_covers_window_flush() {
        // window 2s / tick 200ms: a decrease must be followed by 10 holds
        // (one full window flush) before the next decrease can fire.
        let cfg = SloConfig {
            target: SloTarget::P99BelowUs(10_000),
            window_s: 2,
            tick_us: 200_000,
            initial_rate: 1_000.0,
            ..SloConfig::default()
        };
        let mut core = SloCore::new(cfg);
        let violation = obs(20_000, 900.0, 500);
        assert_eq!(core.tick(&violation).adjustment, Adjustment::Decrease);
        for i in 0..10 {
            assert_eq!(core.tick(&violation).adjustment, Adjustment::Hold, "tick {i}");
        }
        assert_eq!(core.tick(&violation).adjustment, Adjustment::Decrease);
    }

    #[test]
    fn rate_clamped_to_bounds() {
        let cfg = SloConfig {
            target: SloTarget::P99BelowUs(1_000),
            // window == tick so the decrease cooldown is a single tick.
            window_s: 1,
            tick_us: 1_000_000,
            initial_rate: 20.0,
            min_rate: 15.0,
            max_rate: 30.0,
            additive_step: 100.0,
            ..SloConfig::default()
        };
        let mut core = SloCore::new(cfg);
        let d = core.tick(&obs(100, 10.0, 100));
        assert_eq!(d.rate, 30.0, "capped at max_rate");
        for _ in 0..10 {
            core.tick(&obs(100_000, 10.0, 100));
        }
        assert_eq!(core.rate(), 15.0, "floored at min_rate");
    }

    #[test]
    fn open_breaker_forces_multiplicative_decrease() {
        let cfg = SloConfig {
            target: SloTarget::P99BelowUs(10_000),
            initial_rate: 1_000.0,
            breaker_backoff: 0.5,
            ..SloConfig::default()
        };
        let mut core = SloCore::new(cfg);
        // Even with a perfectly healthy latency observation, an open
        // breaker overrides everything with a hard backoff.
        let healthy_but_open = SloObservation { breaker_open: true, ..obs(1_000, 900.0, 500) };
        let d = core.tick(&healthy_but_open);
        assert_eq!(d.adjustment, Adjustment::BreakerBackoff);
        assert!((d.rate - 500.0).abs() < 1e-9);
        let d = core.tick(&healthy_but_open);
        assert!((d.rate - 250.0).abs() < 1e-9, "backoff compounds while open");
        // Half-open: hold for the probes.
        let half = SloObservation { breaker_half_open: true, ..obs(1_000, 900.0, 500) };
        let d = core.tick(&half);
        assert_eq!(d.adjustment, Adjustment::Hold);
        assert!((d.rate - 250.0).abs() < 1e-9);
        // Re-closed: additive probing resumes from the backed-off rate.
        let d = core.tick(&obs(1_000, 240.0, 500));
        assert_eq!(d.adjustment, Adjustment::Increase);
        assert!(d.rate > 250.0);
    }

    #[test]
    fn sparse_window_holds() {
        let mut core = SloCore::new(SloConfig {
            min_samples: 50,
            initial_rate: 500.0,
            ..SloConfig::default()
        });
        let d = core.tick(&obs(1, 10.0, 49));
        assert_eq!(d.adjustment, Adjustment::Hold);
        assert_eq!(d.rate, 500.0);
        assert_eq!(core.tick(&obs(1, 10.0, 50)).adjustment, Adjustment::Increase);
    }

    #[test]
    fn max_throughput_probes_up_and_backs_off() {
        let cfg = SloConfig {
            target: SloTarget::MaxThroughput,
            initial_rate: 1_000.0,
            additive_step: 100.0,
            ..SloConfig::default()
        };
        let mut core = SloCore::new(cfg);
        // Engine keeps up: probe upward.
        let d = core.tick(&obs(1_000, 990.0, 500));
        assert_eq!(d.adjustment, Adjustment::Increase);
        assert!((d.rate - 1_100.0).abs() < 1e-9);
        // Engine saturated at 800: pull back proportionally.
        let d = core.tick(&obs(1_000, 800.0, 500));
        assert_eq!(d.adjustment, Adjustment::Decrease);
        assert!((d.rate - 1_100.0 * (800.0 / 1_100.0)).abs() < 1e-9);
    }

    #[test]
    fn identical_observations_identical_decisions() {
        // The replay-style purity guarantee: SloCore has no clock and no
        // RNG, so the decision sequence is a function of (config,
        // observation sequence) alone.
        let cfg = SloConfig {
            target: SloTarget::P99BelowUs(8_000),
            law: ControlLaw::Pid,
            initial_rate: 400.0,
            ..SloConfig::default()
        };
        let mut a = SloCore::new(cfg.clone());
        let mut b = SloCore::new(cfg);
        let mut seq = Vec::new();
        for i in 0..200u64 {
            // A deterministic, wiggly synthetic trace: latency swings
            // above and below the limit, breaker opens mid-sequence.
            let p99 = 4_000 + (i * 997) % 9_000;
            let mut o = obs(p99, 300.0 + (i % 7) as f64 * 20.0, 100 + i);
            o.breaker_open = (60..65).contains(&i);
            o.breaker_half_open = (65..67).contains(&i);
            seq.push(o);
        }
        let da: Vec<SloDecision> = seq.iter().map(|o| a.tick(o)).collect();
        let db: Vec<SloDecision> = seq.iter().map(|o| b.tick(o)).collect();
        assert_eq!(da, db, "same config + observations ⇒ identical adjustment sequence");
        assert!(da.iter().any(|d| d.adjustment == Adjustment::BreakerBackoff));
        assert!(da.iter().any(|d| d.adjustment == Adjustment::Increase));
        assert!(da.iter().any(|d| d.adjustment == Adjustment::Decrease));
    }

    #[test]
    fn pid_converges_toward_limit() {
        let cfg = SloConfig {
            target: SloTarget::P99BelowUs(10_000),
            law: ControlLaw::Pid,
            initial_rate: 100.0,
            min_rate: 1.0,
            ..SloConfig::default()
        };
        let mut core = SloCore::new(cfg);
        // Toy plant: p99 responds linearly to rate (saturates at 200 tx/s
        // where p99 hits the 10ms limit).
        let mut rate = 100.0;
        for _ in 0..300 {
            let p99 = (rate / 200.0 * 10_000.0) as u64;
            rate = core.tick(&obs(p99, rate * 0.98, 1_000)).rate;
        }
        assert!(
            (rate - 200.0).abs() / 200.0 < 0.10,
            "PID should settle near the 200 tx/s operating point, got {rate}"
        );
    }

    #[test]
    fn handle_arm_resets_and_bumps_epoch() {
        let h = SloHandle::new("w");
        assert!(!h.is_active());
        let e1 = h.arm(&SloConfig::default());
        assert!(h.is_active());
        assert_eq!(h.epoch(), e1);
        assert!((h.current_rate() - SloConfig::default().initial_rate).abs() < 1e-9);
        let d = SloDecision { rate: 123.0, adjustment: Adjustment::Increase, error: 0.5 };
        h.on_tick(&obs(1_000, 100.0, 50), &d);
        assert_eq!(h.increases(), 1);
        assert_eq!(h.ticks(), 1);
        assert!((h.current_rate() - 123.0).abs() < 1e-9);
        // Re-arm: counters reset, epoch bumps (stale loop dies).
        let e2 = h.arm(&SloConfig::default());
        assert!(e2 > e1);
        assert_eq!(h.increases(), 0);
        assert_eq!(h.ticks(), 0);
        h.disarm();
        assert!(!h.is_active());
        assert!(h.epoch() > e2);
    }

    #[test]
    fn handle_metrics_expose_slo_series() {
        let h = SloHandle::new("voter");
        h.arm(&SloConfig { target: SloTarget::P99BelowUs(5_000), ..SloConfig::default() });
        let o = SloObservation { breaker_open: true, ..obs(9_000, 50.0, 100) };
        let d = SloDecision { rate: 50.0, adjustment: Adjustment::BreakerBackoff, error: -1.0 };
        h.on_tick(&o, &d);
        let mut buf = MetricsBuf::new();
        h.collect(&mut buf);
        let samples = buf.into_samples();
        let get = |name: &str| samples.iter().find(|s| s.name == name).unwrap();
        assert_eq!(get("bp_slo_active").value, bp_obs::MetricValue::Gauge(1.0));
        assert_eq!(get("bp_slo_target_us").value, bp_obs::MetricValue::Gauge(5_000.0));
        assert!(get("bp_slo_target_us").labels.iter().any(|(k, v)| k == "target" && v == "p99"));
        assert_eq!(get("bp_slo_current_rate").value, bp_obs::MetricValue::Gauge(50.0));
        assert_eq!(get("bp_slo_breaker_backoffs_total").value, bp_obs::MetricValue::Counter(1.0));
        assert!(samples.iter().all(|s| s.labels.iter().any(|(k, v)| k == "workload" && v == "voter")));
    }
}
