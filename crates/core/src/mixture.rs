//! Transaction-mixture control (§2.2.2).
//!
//! The mixture is an immutable weighted distribution over a benchmark's
//! transaction types. Workers hold an `Arc` snapshot and sample lock-free;
//! the controller swaps the `Arc` to change the mixture at runtime — in a
//! phase transition or on demand through the control API.

use bp_util::rng::{Discrete, Rng};

use crate::workload::TransactionType;

/// An immutable transaction mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct Mixture {
    weights: Vec<f64>,
    dist: Discrete,
}

/// Errors constructing a mixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixtureError {
    Empty,
    WrongArity { expected: usize, got: usize },
    Invalid(String),
}

impl std::fmt::Display for MixtureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixtureError::Empty => write!(f, "mixture has no weights"),
            MixtureError::WrongArity { expected, got } => {
                write!(f, "mixture has {got} weights, benchmark has {expected} transaction types")
            }
            MixtureError::Invalid(m) => write!(f, "invalid mixture: {m}"),
        }
    }
}

impl std::error::Error for MixtureError {}

impl Mixture {
    /// Build from raw weights (need not sum to 100).
    pub fn new(weights: Vec<f64>) -> Result<Mixture, MixtureError> {
        if weights.is_empty() {
            return Err(MixtureError::Empty);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(MixtureError::Invalid("weights must be finite and >= 0".into()));
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(MixtureError::Invalid("weights must not all be zero".into()));
        }
        let dist = Discrete::new(&weights);
        Ok(Mixture { weights, dist })
    }

    /// Validate weight-vector arity against a benchmark's transaction types.
    pub fn for_types(weights: Vec<f64>, types: &[TransactionType]) -> Result<Mixture, MixtureError> {
        if weights.len() != types.len() {
            return Err(MixtureError::WrongArity { expected: types.len(), got: weights.len() });
        }
        Mixture::new(weights)
    }

    /// The benchmark's default mixture.
    pub fn default_of(types: &[TransactionType]) -> Mixture {
        Mixture::new(types.iter().map(|t| t.default_weight).collect())
            .expect("benchmark default weights must be valid")
    }

    /// Preset: only read-only transaction types (Fig. 2d "Read-only").
    /// Falls back to the default mixture if the benchmark has none.
    pub fn read_only_of(types: &[TransactionType]) -> Mixture {
        let weights: Vec<f64> = types.iter().map(|t| if t.read_only { 1.0 } else { 0.0 }).collect();
        Mixture::new(weights).unwrap_or_else(|_| Mixture::default_of(types))
    }

    /// Preset: only writing transaction types (Fig. 2d "Super-writes").
    /// Falls back to the default mixture if the benchmark is read-only.
    pub fn super_writes_of(types: &[TransactionType]) -> Mixture {
        let weights: Vec<f64> = types.iter().map(|t| if t.read_only { 0.0 } else { 1.0 }).collect();
        Mixture::new(weights).unwrap_or_else(|_| Mixture::default_of(types))
    }

    /// Parse a comma-separated weights string ("45,43,4,4,4").
    pub fn parse(text: &str) -> Result<Mixture, MixtureError> {
        let weights: Result<Vec<f64>, _> = text
            .split(',')
            .map(|p| p.trim().parse::<f64>())
            .collect();
        match weights {
            Ok(w) => Mixture::new(w),
            Err(e) => Err(MixtureError::Invalid(e.to_string())),
        }
    }

    /// Sample a transaction-type index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        self.dist.sample(rng)
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    pub fn len(&self) -> usize {
        self.weights.len()
    }

    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Probability of type `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.dist.probability(i)
    }

    /// Fraction of the mixture that writes, given the benchmark's types.
    /// This is what makes read-heavy mixtures faster under lock contention.
    pub fn write_share(&self, types: &[TransactionType]) -> f64 {
        types
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.read_only)
            .map(|(i, _)| self.probability(i))
            .sum()
    }

    /// Mean relative cost of a sampled transaction under this mixture.
    pub fn mean_cost(&self, types: &[TransactionType]) -> f64 {
        types
            .iter()
            .enumerate()
            .map(|(i, t)| self.probability(i) * t.relative_cost)
            .sum()
    }
}

/// The preset mixtures the game offers (Fig. 2d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixturePreset {
    Default,
    ReadOnly,
    SuperWrites,
}

impl MixturePreset {
    pub fn build(self, types: &[TransactionType]) -> Mixture {
        match self {
            MixturePreset::Default => Mixture::default_of(types),
            MixturePreset::ReadOnly => Mixture::read_only_of(types),
            MixturePreset::SuperWrites => Mixture::super_writes_of(types),
        }
    }

    pub fn by_name(name: &str) -> Option<MixturePreset> {
        match name.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "default" => Some(MixturePreset::Default),
            "readonly" => Some(MixturePreset::ReadOnly),
            "superwrites" | "writeheavy" => Some(MixturePreset::SuperWrites),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn types() -> Vec<TransactionType> {
        vec![
            TransactionType::new("NewOrder", 45.0, false).with_cost(2.0),
            TransactionType::new("Payment", 43.0, false),
            TransactionType::new("OrderStatus", 4.0, true),
            TransactionType::new("Delivery", 4.0, false),
            TransactionType::new("StockLevel", 4.0, true),
        ]
    }

    #[test]
    fn default_mixture_matches_weights() {
        let m = Mixture::default_of(&types());
        assert_eq!(m.weights(), &[45.0, 43.0, 4.0, 4.0, 4.0]);
        assert!((m.probability(0) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn read_only_preset_zeroes_writers() {
        let m = Mixture::read_only_of(&types());
        assert_eq!(m.weights(), &[0.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(m.write_share(&types()), 0.0);
    }

    #[test]
    fn super_writes_preset() {
        let m = Mixture::super_writes_of(&types());
        assert!((m.write_share(&types()) - 1.0).abs() < 1e-12);
        assert_eq!(m.probability(2), 0.0);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let m = Mixture::default_of(&types());
        let mut rng = Rng::new(1);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[m.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.45).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.04).abs() < 0.005);
    }

    #[test]
    fn write_share_of_default() {
        let m = Mixture::default_of(&types());
        assert!((m.write_share(&types()) - 0.92).abs() < 1e-9);
    }

    #[test]
    fn mean_cost_weighs_by_probability() {
        let m = Mixture::default_of(&types());
        // 0.45*2 + 0.55*1 = 1.45
        assert!((m.mean_cost(&types()) - 1.45).abs() < 1e-9);
    }

    #[test]
    fn parse_weights_string() {
        let m = Mixture::parse("45, 43, 4, 4, 4").unwrap();
        assert_eq!(m.len(), 5);
        assert!(Mixture::parse("a,b").is_err());
        assert!(Mixture::parse("0,0").is_err());
    }

    #[test]
    fn arity_check() {
        let err = Mixture::for_types(vec![1.0, 2.0], &types()).unwrap_err();
        assert_eq!(err, MixtureError::WrongArity { expected: 5, got: 2 });
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![-1.0, 2.0]).is_err());
        assert!(Mixture::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn presets_by_name() {
        assert_eq!(MixturePreset::by_name("Read-Only"), Some(MixturePreset::ReadOnly));
        assert_eq!(MixturePreset::by_name("super_writes"), Some(MixturePreset::SuperWrites));
        assert_eq!(MixturePreset::by_name("default"), Some(MixturePreset::Default));
        assert_eq!(MixturePreset::by_name("nope"), None);
    }

    #[test]
    fn preset_fallback_for_readonly_benchmark() {
        let ro_types = vec![TransactionType::new("Read", 100.0, true)];
        let m = MixturePreset::SuperWrites.build(&ro_types);
        assert_eq!(m.weights(), &[100.0]);
    }
}
