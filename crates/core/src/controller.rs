//! Runtime control state and the [`Controller`] handle (§2.2.4).
//!
//! The controller is the programmatic surface behind the REST API: throttle
//! the rate, swap the mixture, pause/resume the workers, read instantaneous
//! throughput and latency, and halt-and-reset (the game's crash semantics).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bp_obs::{EventJournal, Severity};
use bp_util::sync::RwLock;

use bp_storage::Database;
use bp_util::clock::Micros;

use crate::mixture::{Mixture, MixtureError, MixturePreset};
use crate::queue::RequestQueue;
use crate::rate::{ArrivalDist, Rate};
use crate::recovery::{recovery_loop, RecoveryConfig, RecoveryHandle};
use crate::slo::{slo_loop, SloConfig, SloHandle};
use crate::stats::{StatsCollector, StatusSnapshot};
use crate::workload::TransactionType;

/// Shared mutable control state read by the manager and workers.
pub struct ControlState {
    rate: RwLock<Rate>,
    arrival: RwLock<ArrivalDist>,
    mixture: RwLock<Arc<Mixture>>,
    paused: AtomicBool,
    stopped: AtomicBool,
    think_time_us: AtomicU64,
    /// Set when the API changed rate/mixture; cleared at phase transitions
    /// (API changes override *the current phase*, like OLTP-Bench).
    rate_override: AtomicBool,
    mixture_override: AtomicBool,
    phase_idx: AtomicUsize,
    pub unlimited_rate: f64,
    /// The run's event journal (phase transitions, rate/mixture changes).
    /// Wired by [`Controller::new`] from the database's journal.
    journal: RwLock<Option<Arc<EventJournal>>>,
}

impl ControlState {
    pub fn new(initial_rate: Rate, mixture: Mixture, unlimited_rate: f64) -> Arc<ControlState> {
        Arc::new(ControlState {
            rate: RwLock::new(initial_rate),
            arrival: RwLock::new(ArrivalDist::Uniform),
            mixture: RwLock::new(Arc::new(mixture)),
            paused: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            think_time_us: AtomicU64::new(0),
            rate_override: AtomicBool::new(false),
            mixture_override: AtomicBool::new(false),
            phase_idx: AtomicUsize::new(0),
            unlimited_rate,
            journal: RwLock::new(None),
        })
    }

    /// Attach the event journal (control-plane change events). Idempotent;
    /// called by [`Controller::new`] so every construction path is wired.
    pub fn set_journal(&self, journal: Arc<EventJournal>) {
        *self.journal.write() = Some(journal);
    }

    fn emit(
        &self,
        severity: Severity,
        kind: &'static str,
        make: impl FnOnce() -> (String, Vec<(&'static str, String)>),
    ) {
        if let Some(j) = self.journal.read().as_ref() {
            j.emit_with(severity, "core", kind, make);
        }
    }

    pub fn rate(&self) -> Rate {
        *self.rate.read()
    }

    pub fn arrival(&self) -> ArrivalDist {
        *self.arrival.read()
    }

    pub fn mixture(&self) -> Arc<Mixture> {
        self.mixture.read().clone()
    }

    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    pub fn think_time_us(&self) -> Micros {
        self.think_time_us.load(Ordering::Relaxed)
    }

    pub fn phase_idx(&self) -> usize {
        self.phase_idx.load(Ordering::Relaxed)
    }

    // -- manager-side (phase transitions) --

    /// Apply a phase's parameters unless an API override is active for the
    /// corresponding knob; `new_phase` clears overrides first.
    pub fn apply_phase(
        &self,
        idx: usize,
        rate: Rate,
        arrival: ArrivalDist,
        weights: Option<&[f64]>,
        think_time_us: Micros,
        new_phase: bool,
    ) {
        if new_phase {
            self.rate_override.store(false, Ordering::SeqCst);
            self.mixture_override.store(false, Ordering::SeqCst);
            self.phase_idx.store(idx, Ordering::Relaxed);
            self.think_time_us.store(think_time_us, Ordering::Relaxed);
            self.emit(Severity::Info, "phase_change", || {
                (
                    format!("phase {idx} started (rate {rate}, think {think_time_us}us)"),
                    vec![("phase", idx.to_string()), ("rate", rate.to_string())],
                )
            });
        }
        if !self.rate_override.load(Ordering::SeqCst) {
            *self.rate.write() = rate;
            *self.arrival.write() = arrival;
        }
        if !self.mixture_override.load(Ordering::SeqCst) {
            if let Some(w) = weights {
                if let Ok(m) = Mixture::new(w.to_vec()) {
                    *self.mixture.write() = Arc::new(m);
                }
            }
        }
    }

    // -- API-side --

    pub fn set_rate(&self, rate: Rate) {
        self.rate_override.store(true, Ordering::SeqCst);
        let before = {
            let mut r = self.rate.write();
            let before = *r;
            *r = rate;
            before
        };
        if before != rate {
            self.emit(Severity::Info, "rate_change", || {
                (
                    format!("offered rate changed: {before} -> {rate}"),
                    vec![("before", before.to_string()), ("after", rate.to_string())],
                )
            });
        }
    }

    pub fn set_arrival(&self, arrival: ArrivalDist) {
        self.rate_override.store(true, Ordering::SeqCst);
        *self.arrival.write() = arrival;
    }

    pub fn set_mixture(&self, mixture: Mixture) {
        self.mixture_override.store(true, Ordering::SeqCst);
        let weights = format!("{:?}", mixture.weights());
        *self.mixture.write() = Arc::new(mixture);
        self.emit(Severity::Info, "mixture_change", || {
            (
                format!("transaction mixture changed to {weights}"),
                vec![("after", weights.replace(' ', ""))],
            )
        });
    }

    pub fn set_think_time(&self, micros: Micros) {
        self.think_time_us.store(micros, Ordering::Relaxed);
    }

    pub fn pause(&self) {
        self.paused.store(true, Ordering::SeqCst);
    }

    pub fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
    }

    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }
}

/// The public control handle for one running workload.
#[derive(Clone)]
pub struct Controller {
    state: Arc<ControlState>,
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    db: Arc<Database>,
    types: Arc<Vec<TransactionType>>,
    workload_name: String,
    /// Node identity in a bp-cluster fleet ("local" outside one).
    node: String,
    spans: Option<Arc<bp_obs::SpanRecorder>>,
    breaker: Option<Arc<bp_chaos::CircuitBreaker>>,
    recorder: Option<Arc<bp_obs::TelemetryRecorder>>,
    /// Persistent SLO-controller state, shared by all clones of this
    /// controller so API servers and the executor see one loop.
    slo: Arc<SloHandle>,
    /// Recovery-supervisor state (crash watchdog + checkpointer), shared by
    /// all clones like the SLO handle.
    recovery: Arc<RecoveryHandle>,
}

impl Controller {
    pub fn new(
        state: Arc<ControlState>,
        queue: Arc<RequestQueue>,
        stats: Arc<StatsCollector>,
        db: Arc<Database>,
        types: Vec<TransactionType>,
        workload_name: &str,
    ) -> Controller {
        state.set_journal(db.journal().clone());
        Controller {
            state,
            queue,
            stats,
            db,
            types: Arc::new(types),
            workload_name: workload_name.to_string(),
            node: "local".to_string(),
            spans: None,
            breaker: None,
            recorder: None,
            slo: Arc::new(SloHandle::new(workload_name)),
            recovery: Arc::new(RecoveryHandle::new()),
        }
    }

    /// Stamp the cluster node identity (builder-style; the executor does
    /// this from `RunConfig.node`).
    pub fn with_node(mut self, node: &str) -> Controller {
        self.node = node.to_string();
        self
    }

    /// The cluster node this run belongs to ("local" outside a cluster).
    pub fn node_id(&self) -> &str {
        &self.node
    }

    /// Attach the run's span recorder (builder-style; the executor does
    /// this so API surfaces can expose `/trace`).
    pub fn with_spans(mut self, spans: Arc<bp_obs::SpanRecorder>) -> Controller {
        self.spans = Some(spans);
        self
    }

    /// The run's span recorder, if lifecycle tracing is wired up.
    pub fn spans(&self) -> Option<&Arc<bp_obs::SpanRecorder>> {
        self.spans.as_ref()
    }

    /// Attach the run's circuit breaker (builder-style; the executor does
    /// this when `ResilienceConfig.breaker` is set).
    pub fn with_breaker(mut self, breaker: Arc<bp_chaos::CircuitBreaker>) -> Controller {
        self.breaker = Some(breaker);
        self
    }

    /// The run's admission controller, if one is configured.
    pub fn breaker(&self) -> Option<&Arc<bp_chaos::CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// Attach the run's continuous telemetry recorder (builder-style; the
    /// executor does this so API surfaces can expose `/report`).
    pub fn with_recorder(mut self, recorder: Arc<bp_obs::TelemetryRecorder>) -> Controller {
        self.recorder = Some(recorder);
        self
    }

    /// The run's telemetry recorder, if continuous recording is wired up.
    pub fn recorder(&self) -> Option<&Arc<bp_obs::TelemetryRecorder>> {
        self.recorder.as_ref()
    }

    /// The run's structured event journal (owned by the database so the
    /// storage, chaos, and control layers all write into one ring).
    pub fn journal(&self) -> &Arc<bp_obs::EventJournal> {
        self.db.journal()
    }

    /// The database's chaos controller (fault-injection surface).
    pub fn chaos(&self) -> &Arc<bp_chaos::ChaosController> {
        self.db.chaos()
    }

    /// Register this workload's metrics silos with a unified registry:
    /// client-side statistics, the storage engine's server counters, and
    /// (when present) the span recorder's stage histograms. Duplicate
    /// registration (e.g. two controllers sharing one database) is a no-op
    /// per source.
    pub fn register_metrics(&self, registry: &bp_obs::MetricsRegistry) {
        registry.register(
            &format!("stats:{}", self.workload_name),
            self.stats.clone(),
        );
        registry.register("server", self.db.metrics().clone());
        registry.register("chaos", self.db.chaos().clone());
        registry.register("recovery", self.db.recovery_stats().clone());
        if let Some(spans) = &self.spans {
            registry.register(&format!("spans:{}", self.workload_name), spans.clone());
        }
        if let Some(breaker) = &self.breaker {
            registry.register(&format!("breaker:{}", self.workload_name), breaker.clone());
        }
        registry.register("journal", self.db.journal().clone());
        if let Some(recorder) = &self.recorder {
            registry.register(&format!("telemetry:{}", self.workload_name), recorder.clone());
        }
    }

    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    pub fn transaction_types(&self) -> &[TransactionType] {
        &self.types
    }

    pub fn state(&self) -> &Arc<ControlState> {
        &self.state
    }

    pub fn stats(&self) -> &Arc<StatsCollector> {
        &self.stats
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Throttle to a new target rate, effective immediately.
    pub fn set_rate(&self, rate: Rate) {
        self.state.set_rate(rate);
        self.queue
            .set_rate(rate.arrivals_per_second(self.state.unlimited_rate));
    }

    /// Replace the transaction mixture (validated against the benchmark).
    pub fn set_mixture(&self, weights: Vec<f64>) -> Result<(), MixtureError> {
        let m = Mixture::for_types(weights, &self.types)?;
        self.state.set_mixture(m);
        Ok(())
    }

    /// Apply one of the preset mixtures (Fig. 2d).
    pub fn set_preset(&self, preset: MixturePreset) {
        self.state.set_mixture(preset.build(&self.types));
    }

    /// Temporarily block all workers from executing requests (§4.1.2:
    /// pausing to change the workload parameters).
    pub fn pause(&self) {
        self.state.pause();
    }

    pub fn resume(&self) {
        self.state.resume();
    }

    pub fn is_paused(&self) -> bool {
        self.state.is_paused()
    }

    /// Stop the run (graceful; workers finish in-flight transactions).
    pub fn stop(&self) {
        self.state.stop();
        self.queue.close();
    }

    pub fn is_stopped(&self) -> bool {
        self.state.is_stopped()
    }

    /// The game-over path (§4.1.1): halt the benchmark and reset the
    /// database. Returns how many queued requests were discarded.
    pub fn halt_and_reset(&self) -> usize {
        self.stop();
        let dropped = self.queue.drain();
        self.db.truncate_all();
        dropped
    }

    /// Instantaneous feedback: throughput and per-type latency (§2.2.4).
    pub fn status(&self) -> StatusSnapshot {
        self.stats.status(3)
    }

    /// Backlog of postponed requests.
    pub fn backlog(&self) -> usize {
        self.queue.backlog()
    }

    pub fn current_rate(&self) -> Rate {
        self.state.rate()
    }

    pub fn current_mixture(&self) -> Arc<Mixture> {
        self.state.mixture()
    }

    // -- closed-loop SLO control --

    /// This workload's SLO-controller state (config, live gauges, loop
    /// epoch). Always present; inactive until [`Controller::start_slo`].
    pub fn slo(&self) -> &Arc<SloHandle> {
        &self.slo
    }

    /// Start (or replace) the closed-loop SLO controller: arm the shared
    /// handle, apply the initial rate, and spawn the control thread. A
    /// previously running loop notices its stale epoch and exits.
    pub fn start_slo(&self, cfg: SloConfig) {
        let epoch = self.slo.arm(&cfg);
        self.journal().emit_with(Severity::Info, "slo", "slo_armed", || {
            (
                format!(
                    "SLO loop armed: {} <= {}us ({})",
                    cfg.target.kind(),
                    cfg.target.limit_us(),
                    cfg.law.name(),
                ),
                vec![
                    ("workload", self.workload_name.clone()),
                    ("limit_us", cfg.target.limit_us().to_string()),
                ],
            )
        });
        self.set_rate(Rate::Limited(cfg.initial_rate.clamp(cfg.min_rate, cfg.max_rate)));
        let controller = self.clone();
        let handle = self.slo.clone();
        std::thread::Builder::new()
            .name("bp-slo".into())
            .spawn(move || slo_loop(controller, handle, cfg, epoch))
            .expect("spawn SLO control thread");
    }

    /// Stop the SLO loop (the last applied rate stays in effect).
    pub fn stop_slo(&self) {
        self.slo.disarm();
        self.journal().emit_with(Severity::Info, "slo", "slo_disarmed", || {
            (
                "SLO loop disarmed (last applied rate stays in effect)".to_string(),
                vec![("workload", self.workload_name.clone())],
            )
        });
    }

    // -- crash-recovery supervision --

    /// This controller's recovery-supervisor state. Always present;
    /// inactive until [`Controller::start_recovery`].
    pub fn recovery(&self) -> &Arc<RecoveryHandle> {
        &self.recovery
    }

    /// Start (or replace) the recovery supervisor: a watchdog thread that
    /// runs [`Database::recover`] whenever the engine crashes and takes
    /// periodic checkpoints to keep redo replay short. A previously
    /// running watchdog notices its stale epoch and exits.
    pub fn start_recovery(&self, cfg: RecoveryConfig) {
        let epoch = self.recovery.arm(&cfg);
        self.journal().emit_with(Severity::Info, "core", "recovery_armed", || {
            (
                format!(
                    "recovery supervisor armed (poll {}us, checkpoint every {}us)",
                    cfg.poll_interval_us, cfg.checkpoint_interval_us,
                ),
                vec![
                    ("poll_us", cfg.poll_interval_us.to_string()),
                    ("checkpoint_us", cfg.checkpoint_interval_us.to_string()),
                ],
            )
        });
        let db = self.db.clone();
        let handle = self.recovery.clone();
        std::thread::Builder::new()
            .name("bp-recovery".into())
            .spawn(move || recovery_loop(db, handle, cfg, epoch))
            .expect("spawn recovery supervisor thread");
    }

    /// Stop the recovery supervisor. A crashed engine then stays down
    /// until `recover()` is invoked some other way (API or test code).
    pub fn stop_recovery(&self) {
        self.recovery.disarm();
        self.journal().emit_with(Severity::Info, "core", "recovery_disarmed", || {
            (
                "recovery supervisor disarmed".to_string(),
                vec![("state", "disarmed".to_string())],
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::Personality;
    use bp_util::clock::sim_clock;

    fn controller() -> Controller {
        let (_, clock) = sim_clock();
        let types = vec![
            TransactionType::new("r", 50.0, true),
            TransactionType::new("w", 50.0, false),
        ];
        let mixture = Mixture::default_of(&types);
        let state = ControlState::new(Rate::Limited(100.0), mixture, 10_000.0);
        let queue = Arc::new(RequestQueue::new(clock.clone()));
        let stats = Arc::new(StatsCollector::new(clock, &["r", "w"]));
        let db = Database::new(Personality::test());
        Controller::new(state, queue, stats, db, types, "test")
    }

    #[test]
    fn rate_change_overrides_phase() {
        let c = controller();
        c.set_rate(Rate::Limited(500.0));
        assert_eq!(c.current_rate(), Rate::Limited(500.0));
        // A same-phase re-apply must NOT undo the API override...
        c.state().apply_phase(0, Rate::Limited(100.0), ArrivalDist::Uniform, None, 0, false);
        assert_eq!(c.current_rate(), Rate::Limited(500.0));
        // ...but a new phase does.
        c.state().apply_phase(1, Rate::Limited(100.0), ArrivalDist::Uniform, None, 0, true);
        assert_eq!(c.current_rate(), Rate::Limited(100.0));
    }

    #[test]
    fn mixture_change_validated() {
        let c = controller();
        assert!(c.set_mixture(vec![1.0]).is_err());
        c.set_mixture(vec![0.0, 1.0]).unwrap();
        assert_eq!(c.current_mixture().weights(), &[0.0, 1.0]);
    }

    #[test]
    fn presets() {
        let c = controller();
        c.set_preset(MixturePreset::ReadOnly);
        assert_eq!(c.current_mixture().weights(), &[1.0, 0.0]);
        c.set_preset(MixturePreset::SuperWrites);
        assert_eq!(c.current_mixture().weights(), &[0.0, 1.0]);
    }

    #[test]
    fn pause_resume_stop() {
        let c = controller();
        assert!(!c.is_paused());
        c.pause();
        assert!(c.is_paused());
        c.resume();
        assert!(!c.is_paused());
        c.stop();
        assert!(c.is_stopped());
    }

    #[test]
    fn halt_and_reset_drains_and_truncates() {
        let c = controller();
        c.database()
            .create_table(
                bp_storage::TableSchema::new(
                    "t",
                    vec![bp_storage::Column::new("id", bp_storage::DataType::Int)],
                    &["id"],
                )
                .unwrap(),
            )
            .unwrap();
        let t = c.database().table("t").unwrap();
        let mut s = c.database().session();
        s.begin().unwrap();
        s.insert(&t, vec![bp_storage::Value::Int(1)]).unwrap();
        s.commit().unwrap();
        c.halt_and_reset();
        assert!(c.is_stopped());
        assert_eq!(c.database().total_rows(), 0);
    }

    #[test]
    fn register_metrics_wires_all_silos() {
        let reg = bp_obs::MetricsRegistry::new();
        let c = controller()
            .with_spans(Arc::new(bp_obs::SpanRecorder::new(bp_obs::ObsConfig::default())));
        assert!(c.spans().is_some());
        c.register_metrics(&reg);
        assert_eq!(
            reg.source_count(),
            6,
            "stats + server + chaos + recovery + spans + journal"
        );
        // Re-registering the same controller must not double-count.
        c.register_metrics(&reg);
        assert_eq!(reg.source_count(), 6);
        let text = reg.render_prometheus();
        assert!(text.contains("bp_server_commits_total"));
        assert!(text.contains("bp_stage_latency_us_bucket"));
        assert!(text.contains("bp_chaos_armed"));
        assert!(text.contains("bp_recovery_crashes_total"));
        assert!(text.contains("bp_events_emitted_total"));
    }

    #[test]
    fn register_metrics_includes_breaker_when_present() {
        let reg = bp_obs::MetricsRegistry::new();
        let c = controller().with_breaker(Arc::new(bp_chaos::CircuitBreaker::new(
            "test",
            bp_chaos::BreakerConfig::default(),
        )));
        c.register_metrics(&reg);
        assert_eq!(
            reg.source_count(),
            6,
            "stats + server + chaos + recovery + breaker + journal"
        );
        let text = reg.render_prometheus();
        assert!(text.contains("bp_resilience_breaker_state"));
        assert!(text.contains("bp_resilience_shed_total"));
    }

    #[test]
    fn recovery_supervisor_restarts_crashed_engine() {
        use bp_chaos::{FaultKind, FaultPlan, FaultWindow};
        let c = controller();
        let db = c.database().clone();
        db.create_table(
            bp_storage::TableSchema::new(
                "t",
                vec![bp_storage::Column::new("id", bp_storage::DataType::Int)],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        let t = db.table("t").unwrap();
        c.start_recovery(RecoveryConfig { poll_interval_us: 1_000, checkpoint_interval_us: 0 });
        assert!(c.recovery().is_active());
        // Crash the engine mid-commit via the chaos layer.
        db.chaos().arm(FaultPlan::new("crash", 1).with_window(FaultWindow::always(
            FaultKind::ServerCrash,
            1.0,
            0,
        )));
        let mut s = db.session();
        s.begin().unwrap();
        s.insert(&t, vec![bp_storage::Value::Int(1)]).unwrap();
        assert_eq!(s.commit(), Err(bp_storage::StorageError::Crashed));
        db.chaos().disarm();
        // The watchdog notices within a few polls and recovers.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while db.is_crashed() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(!db.is_crashed(), "supervisor recovered the engine");
        assert!(c.recovery().recoveries_run() >= 1);
        // The engine accepts work again.
        let mut s = db.session();
        s.begin().unwrap();
        s.insert(&t, vec![bp_storage::Value::Int(2)]).unwrap();
        s.commit().unwrap();
        c.stop_recovery();
        assert!(!c.recovery().is_active());
        let kinds: Vec<_> = db.journal().all().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"recovery_armed"));
        assert!(kinds.contains(&"server_crash"));
        assert!(kinds.contains(&"recovery_complete"));
        assert!(kinds.contains(&"recovery_disarmed"));
    }

    #[test]
    fn control_changes_journaled() {
        let c = controller();
        c.set_rate(Rate::Limited(500.0));
        c.set_rate(Rate::Limited(500.0)); // unchanged: no duplicate event
        c.set_mixture(vec![0.0, 1.0]).unwrap();
        c.state()
            .apply_phase(2, Rate::Limited(50.0), ArrivalDist::Uniform, None, 0, true);
        let events = c.journal().all();
        let rates: Vec<_> = events.iter().filter(|e| e.kind == "rate_change").collect();
        assert_eq!(rates.len(), 1, "{events:?}");
        assert!(rates[0].fields.contains(&("after", "500".to_string())));
        assert!(events.iter().any(|e| e.kind == "mixture_change"));
        let phase = events.iter().find(|e| e.kind == "phase_change").unwrap();
        assert!(phase.fields.contains(&("phase", "2".to_string())));
    }

    #[test]
    fn phase_mixture_applies_when_not_overridden() {
        let c = controller();
        c.state()
            .apply_phase(0, Rate::Limited(10.0), ArrivalDist::Exponential, Some(&[1.0, 3.0]), 500, true);
        assert_eq!(c.current_mixture().weights(), &[1.0, 3.0]);
        assert_eq!(c.state().arrival(), ArrivalDist::Exponential);
        assert_eq!(c.state().think_time_us(), 500);
        // API mixture override survives same-phase re-apply.
        c.set_mixture(vec![5.0, 5.0]).unwrap();
        c.state()
            .apply_phase(0, Rate::Limited(10.0), ArrivalDist::Uniform, Some(&[1.0, 3.0]), 0, false);
        assert_eq!(c.current_mixture().weights(), &[5.0, 5.0]);
    }
}
