//! OLTP-Bench style `config.xml` workload configuration files (Fig. 1).
//!
//! ```xml
//! <parameters>
//!     <dbtype>mysql</dbtype>
//!     <benchmark>tpcc</benchmark>
//!     <scalefactor>2</scalefactor>
//!     <terminals>8</terminals>
//!     <works>
//!         <work>
//!             <time>60</time>
//!             <rate>500</rate>
//!             <weights>45,43,4,4,4</weights>
//!             <arrival>exponential</arrival>
//!             <thinktime>0</thinktime>
//!         </work>
//!     </works>
//! </parameters>
//! ```

use bp_obs::{ObsConfig, SpanMode};
use bp_util::xml::XmlNode;

use crate::executor::RunConfig;
use crate::rate::{ArrivalDist, Phase, PhaseScript, Rate};
use crate::slo::{ControlLaw, SloConfig, SloTarget};

/// A parsed workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Target DBMS personality name ("mysql", "postgres", ...).
    pub dbtype: String,
    /// Benchmark name ("tpcc", "ycsb", ...).
    pub benchmark: String,
    pub scale_factor: f64,
    pub terminals: usize,
    pub script: PhaseScript,
    /// Span recording configuration (`<observability>`; defaults to full).
    pub obs: ObsConfig,
    /// Closed-loop SLO control (`<slo>`; absent = open-loop).
    pub slo: Option<SloConfig>,
    /// bp-cluster membership (`<cluster>`; absent = standalone run).
    pub cluster: Option<ClusterMemberConfig>,
}

/// `<cluster>` block: this process's identity in a bp-cluster fleet and the
/// coordinator it should join. Lives in bp-core (not bp-cluster) so the
/// config layer stays dependency-free; bp-cluster consumes it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMemberConfig {
    /// Node identity reported to the coordinator (`<node>`).
    pub node: String,
    /// Coordinator control address, e.g. "127.0.0.1:7070" (`<coordinator>`).
    pub coordinator: String,
    /// Heartbeat interval in milliseconds (`<heartbeatms>`).
    pub heartbeat_ms: u64,
}

impl Default for ClusterMemberConfig {
    fn default() -> Self {
        ClusterMemberConfig {
            node: "local".to_string(),
            coordinator: String::new(),
            heartbeat_ms: 200,
        }
    }
}

/// Configuration errors with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl WorkloadConfig {
    /// Parse from XML text.
    pub fn parse(xml: &str) -> Result<WorkloadConfig, ConfigError> {
        let root = XmlNode::parse(xml).map_err(|e| ConfigError(e.to_string()))?;
        if root.name != "parameters" {
            return Err(ConfigError(format!("root element must be <parameters>, got <{}>", root.name)));
        }
        let dbtype = root
            .child_text("dbtype")
            .ok_or_else(|| ConfigError("missing <dbtype>".into()))?
            .to_string();
        let benchmark = root
            .child_text("benchmark")
            .ok_or_else(|| ConfigError("missing <benchmark>".into()))?
            .to_string();
        let scale_factor = root.child_parse::<f64>("scalefactor").unwrap_or(1.0);
        let terminals = root.child_parse::<usize>("terminals").unwrap_or(1).max(1);

        let works = root
            .child("works")
            .ok_or_else(|| ConfigError("missing <works>".into()))?;
        let mut phases = Vec::new();
        for (i, work) in works.children_named("work").enumerate() {
            let ctx = |m: &str| ConfigError(format!("work #{}: {m}", i + 1));
            let time = work
                .child_parse::<f64>("time")
                .ok_or_else(|| ctx("missing or invalid <time>"))?;
            if time <= 0.0 {
                return Err(ctx("<time> must be positive"));
            }
            let rate_text = work.child_text("rate").unwrap_or("unlimited");
            let rate = Rate::parse(rate_text)
                .ok_or_else(|| ctx(&format!("invalid <rate> '{rate_text}'")))?;
            let weights = match work.child_text("weights") {
                Some(w) if !w.is_empty() => Some(
                    w.split(',')
                        .map(|p| p.trim().parse::<f64>())
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| ctx(&format!("invalid <weights>: {e}")))?,
                ),
                _ => None,
            };
            let arrival = match work.child_text("arrival").or_else(|| work.attr("arrival")) {
                Some(a) => ArrivalDist::parse(a)
                    .ok_or_else(|| ctx(&format!("invalid <arrival> '{a}'")))?,
                None => ArrivalDist::Uniform,
            };
            let think_ms = work.child_parse::<u64>("thinktime").unwrap_or(0);
            let mut phase = Phase::new(rate, time).with_arrival(arrival).with_think_time(think_ms * 1_000);
            phase.weights = weights;
            phases.push(phase);
        }
        if phases.is_empty() {
            return Err(ConfigError("<works> has no <work> phases".into()));
        }

        let mut obs = ObsConfig::default();
        if let Some(node) = root.child("observability") {
            if let Some(mode) = node.child_text("spans") {
                obs.mode = SpanMode::parse(mode)
                    .ok_or_else(|| ConfigError(format!("invalid <spans> '{mode}'")))?;
            }
            if let Some(ratio) = node.child_parse::<f64>("samplerate") {
                if !(0.0..=1.0).contains(&ratio) {
                    return Err(ConfigError(format!("<samplerate> {ratio} outside [0, 1]")));
                }
                obs.sample_ratio = ratio;
            }
            if let Some(cap) = node.child_parse::<usize>("ringcapacity") {
                obs.ring_capacity = cap;
            }
            if let Some(budget) = node.child_parse::<usize>("spanbudget") {
                obs.span_budget = budget;
            }
        }

        let mut slo = None;
        if let Some(node) = root.child("slo") {
            let mut cfg = SloConfig::default();
            let kind = node.child_text("target").unwrap_or("p99");
            let limit_ms = node.child_parse::<f64>("limitms").unwrap_or(50.0);
            cfg.target = SloTarget::parse(kind, (limit_ms * 1_000.0).round() as u64)
                .ok_or_else(|| ConfigError(format!("invalid <slo> <target> '{kind}'")))?;
            if let Some(law) = node.child_text("law") {
                cfg.law = ControlLaw::parse(law)
                    .ok_or_else(|| ConfigError(format!("invalid <slo> <law> '{law}'")))?;
            }
            if let Some(w) = node.child_parse::<usize>("window") {
                cfg.window_s = w.max(1);
            }
            if let Some(t) = node.child_parse::<u64>("tickms") {
                cfg.tick_us = t.max(1) * 1_000;
            }
            if let Some(r) = node.child_parse::<f64>("minrate") {
                cfg.min_rate = r.max(0.0);
            }
            if let Some(r) = node.child_parse::<f64>("maxrate") {
                cfg.max_rate = r;
            }
            if let Some(r) = node.child_parse::<f64>("initialrate") {
                cfg.initial_rate = r;
            }
            if let Some(s) = node.child_parse::<f64>("step") {
                cfg.additive_step = s;
            }
            if let Some(b) = node.child_parse::<f64>("backoff") {
                if !(0.0..1.0).contains(&b) {
                    return Err(ConfigError(format!("<slo> <backoff> {b} outside (0, 1)")));
                }
                cfg.backoff = b;
            }
            if let Some(b) = node.child_parse::<f64>("breakerbackoff") {
                cfg.breaker_backoff = b;
            }
            if let Some(v) = node.child_parse::<f64>("kp") {
                cfg.kp = v;
            }
            if let Some(v) = node.child_parse::<f64>("ki") {
                cfg.ki = v;
            }
            if let Some(v) = node.child_parse::<f64>("kd") {
                cfg.kd = v;
            }
            if let Some(n) = node.child_parse::<u64>("minsamples") {
                cfg.min_samples = n;
            }
            slo = Some(cfg);
        }

        let mut cluster = None;
        if let Some(node) = root.child("cluster") {
            let mut cfg = ClusterMemberConfig::default();
            if let Some(id) = node.child_text("node") {
                if id.is_empty() {
                    return Err(ConfigError("<cluster> <node> must be non-empty".into()));
                }
                cfg.node = id.to_string();
            }
            cfg.coordinator = node
                .child_text("coordinator")
                .ok_or_else(|| ConfigError("missing <cluster> <coordinator>".into()))?
                .to_string();
            if let Some(ms) = node.child_parse::<u64>("heartbeatms") {
                if ms == 0 {
                    return Err(ConfigError("<cluster> <heartbeatms> must be positive".into()));
                }
                cfg.heartbeat_ms = ms;
            }
            cluster = Some(cfg);
        }

        Ok(WorkloadConfig {
            dbtype,
            benchmark,
            scale_factor,
            terminals,
            script: PhaseScript::new(phases),
            obs,
            slo,
            cluster,
        })
    }

    /// Build a [`RunConfig`] from this configuration.
    pub fn run_config(&self, seed: u64) -> RunConfig {
        RunConfig {
            terminals: self.terminals,
            script: self.script.clone(),
            seed,
            obs: self.obs,
            slo: self.slo.clone(),
            node: self
                .cluster
                .as_ref()
                .map(|c| c.node.clone())
                .unwrap_or_else(|| "local".to_string()),
            ..Default::default()
        }
    }

    /// Serialize back to config.xml (for generated sample configs).
    pub fn to_xml(&self) -> String {
        let mut root = XmlNode::new("parameters");
        let add = |name: &str, text: String| {
            let mut n = XmlNode::new(name);
            n.text = text;
            n
        };
        root.children.push(add("dbtype", self.dbtype.clone()));
        root.children.push(add("benchmark", self.benchmark.clone()));
        root.children.push(add("scalefactor", format!("{}", self.scale_factor)));
        root.children.push(add("terminals", format!("{}", self.terminals)));
        let mut works = XmlNode::new("works");
        for p in &self.script.phases {
            let mut work = XmlNode::new("work");
            work.children.push(add("time", format!("{}", p.duration_s)));
            let rate = match p.rate {
                Rate::Unlimited => "unlimited".to_string(),
                Rate::Disabled => "disabled".to_string(),
                Rate::Limited(t) => format!("{t}"),
            };
            work.children.push(add("rate", rate));
            if let Some(w) = &p.weights {
                let txt = w.iter().map(|x| format!("{x}")).collect::<Vec<_>>().join(",");
                work.children.push(add("weights", txt));
            }
            if p.arrival == ArrivalDist::Exponential {
                work.children.push(add("arrival", "exponential".into()));
            }
            if p.think_time_us > 0 {
                work.children.push(add("thinktime", format!("{}", p.think_time_us / 1_000)));
            }
            works.children.push(work);
        }
        root.children.push(works);
        if self.obs != ObsConfig::default() {
            let mut obs = XmlNode::new("observability");
            obs.children.push(add("spans", self.obs.mode.name().into()));
            obs.children.push(add("samplerate", format!("{}", self.obs.sample_ratio)));
            obs.children.push(add("ringcapacity", format!("{}", self.obs.ring_capacity)));
            if self.obs.span_budget > 0 {
                obs.children.push(add("spanbudget", format!("{}", self.obs.span_budget)));
            }
            root.children.push(obs);
        }
        if let Some(s) = &self.slo {
            let mut slo = XmlNode::new("slo");
            slo.children.push(add("target", s.target.kind().into()));
            slo.children.push(add("limitms", format!("{}", s.target.limit_us() as f64 / 1_000.0)));
            slo.children.push(add("law", s.law.name().into()));
            slo.children.push(add("window", format!("{}", s.window_s)));
            slo.children.push(add("tickms", format!("{}", s.tick_us / 1_000)));
            slo.children.push(add("minrate", format!("{}", s.min_rate)));
            slo.children.push(add("maxrate", format!("{}", s.max_rate)));
            slo.children.push(add("initialrate", format!("{}", s.initial_rate)));
            slo.children.push(add("step", format!("{}", s.additive_step)));
            slo.children.push(add("backoff", format!("{}", s.backoff)));
            slo.children.push(add("breakerbackoff", format!("{}", s.breaker_backoff)));
            slo.children.push(add("kp", format!("{}", s.kp)));
            slo.children.push(add("ki", format!("{}", s.ki)));
            slo.children.push(add("kd", format!("{}", s.kd)));
            slo.children.push(add("minsamples", format!("{}", s.min_samples)));
            root.children.push(slo);
        }
        if let Some(c) = &self.cluster {
            let mut cluster = XmlNode::new("cluster");
            cluster.children.push(add("node", c.node.clone()));
            cluster.children.push(add("coordinator", c.coordinator.clone()));
            cluster.children.push(add("heartbeatms", format!("{}", c.heartbeat_ms)));
            root.children.push(cluster);
        }
        root.to_xml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<parameters>
    <dbtype>mysql</dbtype>
    <benchmark>tpcc</benchmark>
    <scalefactor>2</scalefactor>
    <terminals>8</terminals>
    <works>
        <work>
            <time>60</time>
            <rate>500</rate>
            <weights>45,43,4,4,4</weights>
        </work>
        <work>
            <time>30</time>
            <rate>unlimited</rate>
            <arrival>exponential</arrival>
            <thinktime>10</thinktime>
        </work>
    </works>
</parameters>"#;

    #[test]
    fn parse_sample() {
        let cfg = WorkloadConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.dbtype, "mysql");
        assert_eq!(cfg.benchmark, "tpcc");
        assert_eq!(cfg.scale_factor, 2.0);
        assert_eq!(cfg.terminals, 8);
        assert_eq!(cfg.script.phases.len(), 2);
        let p0 = &cfg.script.phases[0];
        assert_eq!(p0.rate, Rate::Limited(500.0));
        assert_eq!(p0.weights.as_deref(), Some(&[45.0, 43.0, 4.0, 4.0, 4.0][..]));
        let p1 = &cfg.script.phases[1];
        assert_eq!(p1.rate, Rate::Unlimited);
        assert_eq!(p1.arrival, ArrivalDist::Exponential);
        assert_eq!(p1.think_time_us, 10_000);
    }

    #[test]
    fn xml_roundtrip() {
        let cfg = WorkloadConfig::parse(SAMPLE).unwrap();
        let xml = cfg.to_xml();
        let back = WorkloadConfig::parse(&xml).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(WorkloadConfig::parse("<parameters></parameters>").is_err());
        assert!(WorkloadConfig::parse(
            "<parameters><dbtype>x</dbtype><benchmark>y</benchmark><works></works></parameters>"
        )
        .is_err());
        let bad_rate = SAMPLE.replace("<rate>500</rate>", "<rate>fast</rate>");
        assert!(WorkloadConfig::parse(&bad_rate).is_err());
        let bad_time = SAMPLE.replace("<time>60</time>", "<time>-5</time>");
        assert!(WorkloadConfig::parse(&bad_time).is_err());
    }

    #[test]
    fn defaults() {
        let min = r#"<parameters><dbtype>d</dbtype><benchmark>b</benchmark>
            <works><work><time>5</time></work></works></parameters>"#;
        let cfg = WorkloadConfig::parse(min).unwrap();
        assert_eq!(cfg.scale_factor, 1.0);
        assert_eq!(cfg.terminals, 1);
        assert_eq!(cfg.script.phases[0].rate, Rate::Unlimited);
    }

    #[test]
    fn run_config_conversion() {
        let cfg = WorkloadConfig::parse(SAMPLE).unwrap();
        let rc = cfg.run_config(7);
        assert_eq!(rc.terminals, 8);
        assert_eq!(rc.seed, 7);
        assert_eq!(rc.script.phases.len(), 2);
        assert_eq!(rc.obs, ObsConfig::default());
    }

    #[test]
    fn parse_observability_block() {
        let xml = SAMPLE.replace(
            "</parameters>",
            "<observability><spans>sampled</spans><samplerate>0.25</samplerate>\
             <ringcapacity>1024</ringcapacity><spanbudget>512</spanbudget>\
             </observability></parameters>",
        );
        let cfg = WorkloadConfig::parse(&xml).unwrap();
        assert_eq!(cfg.obs.mode, SpanMode::Sampled);
        assert_eq!(cfg.obs.sample_ratio, 0.25);
        assert_eq!(cfg.obs.ring_capacity, 1024);
        assert_eq!(cfg.obs.span_budget, 512);
        // Carried into the run config verbatim.
        assert_eq!(cfg.run_config(1).obs, cfg.obs);
        // Survives the XML round trip.
        let back = WorkloadConfig::parse(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn parse_slo_block() {
        let xml = SAMPLE.replace(
            "</parameters>",
            "<slo><target>p99</target><limitms>5</limitms><law>aimd</law>\
             <window>2</window><tickms>100</tickms><minrate>25</minrate>\
             <initialrate>150</initialrate><step>40</step><backoff>0.6</backoff>\
             </slo></parameters>",
        );
        let cfg = WorkloadConfig::parse(&xml).unwrap();
        let slo = cfg.slo.clone().unwrap();
        assert_eq!(slo.target, SloTarget::P99BelowUs(5_000));
        assert_eq!(slo.law, ControlLaw::Aimd);
        assert_eq!(slo.window_s, 2);
        assert_eq!(slo.tick_us, 100_000);
        assert_eq!(slo.min_rate, 25.0);
        assert_eq!(slo.initial_rate, 150.0);
        assert_eq!(slo.additive_step, 40.0);
        assert_eq!(slo.backoff, 0.6);
        // Carried into the run config verbatim.
        assert_eq!(cfg.run_config(1).slo, cfg.slo);
        // Survives the XML round trip (including the infinite max_rate).
        assert_eq!(slo.max_rate, f64::INFINITY);
        let back = WorkloadConfig::parse(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn slo_defaults_and_validation() {
        assert!(WorkloadConfig::parse(SAMPLE).unwrap().slo.is_none());

        let max_tput = SAMPLE.replace(
            "</parameters>",
            "<slo><target>max-throughput</target><law>pid</law></slo></parameters>",
        );
        let cfg = WorkloadConfig::parse(&max_tput).unwrap();
        let slo = cfg.slo.clone().unwrap();
        assert_eq!(slo.target, SloTarget::MaxThroughput);
        assert_eq!(slo.law, ControlLaw::Pid);
        assert_eq!(slo.tick_us, SloConfig::default().tick_us);
        let back = WorkloadConfig::parse(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg);

        let bad_target = SAMPLE.replace(
            "</parameters>",
            "<slo><target>p42</target></slo></parameters>",
        );
        assert!(WorkloadConfig::parse(&bad_target).is_err());

        let bad_law = SAMPLE.replace(
            "</parameters>",
            "<slo><law>fuzzy</law></slo></parameters>",
        );
        assert!(WorkloadConfig::parse(&bad_law).is_err());

        let bad_backoff = SAMPLE.replace(
            "</parameters>",
            "<slo><backoff>1.5</backoff></slo></parameters>",
        );
        assert!(WorkloadConfig::parse(&bad_backoff).is_err());
    }

    #[test]
    fn parse_cluster_block() {
        let xml = SAMPLE.replace(
            "</parameters>",
            "<cluster><node>agent-2</node><coordinator>127.0.0.1:7070</coordinator>\
             <heartbeatms>100</heartbeatms></cluster></parameters>",
        );
        let cfg = WorkloadConfig::parse(&xml).unwrap();
        let c = cfg.cluster.clone().unwrap();
        assert_eq!(c.node, "agent-2");
        assert_eq!(c.coordinator, "127.0.0.1:7070");
        assert_eq!(c.heartbeat_ms, 100);
        // Node identity flows into the run config.
        assert_eq!(cfg.run_config(1).node, "agent-2");
        // Standalone configs keep the default identity.
        assert!(WorkloadConfig::parse(SAMPLE).unwrap().cluster.is_none());
        assert_eq!(WorkloadConfig::parse(SAMPLE).unwrap().run_config(1).node, "local");
        // Survives the XML round trip.
        let back = WorkloadConfig::parse(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg);

        let missing_coord = SAMPLE.replace(
            "</parameters>",
            "<cluster><node>a</node></cluster></parameters>",
        );
        assert!(WorkloadConfig::parse(&missing_coord).is_err());
        let zero_hb = SAMPLE.replace(
            "</parameters>",
            "<cluster><coordinator>c:1</coordinator><heartbeatms>0</heartbeatms></cluster></parameters>",
        );
        assert!(WorkloadConfig::parse(&zero_hb).is_err());
    }

    #[test]
    fn observability_defaults_and_validation() {
        let cfg = WorkloadConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.obs, ObsConfig::default());

        let off = SAMPLE.replace(
            "</parameters>",
            "<observability><spans>off</spans></observability></parameters>",
        );
        assert_eq!(WorkloadConfig::parse(&off).unwrap().obs.mode, SpanMode::Off);

        let bad_mode = SAMPLE.replace(
            "</parameters>",
            "<observability><spans>loud</spans></observability></parameters>",
        );
        assert!(WorkloadConfig::parse(&bad_mode).is_err());

        let bad_ratio = SAMPLE.replace(
            "</parameters>",
            "<observability><samplerate>1.5</samplerate></observability></parameters>",
        );
        assert!(WorkloadConfig::parse(&bad_ratio).is_err());
    }
}
