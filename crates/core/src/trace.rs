//! Result traces (`trace.txt` in Fig. 1) and the Trace Analyzer.
//!
//! Every completed request can be appended to a trace; the analyzer turns a
//! trace back into per-second series, per-type summaries and a target-vs-
//! delivered tracking report — the post-processing step of the testbed
//! pipeline.

use bp_util::sync::Mutex;

use bp_util::clock::{Micros, MICROS_PER_SEC};
use bp_util::timeseries::{mean_abs_error, Summary, TimeSeries};

use crate::rate::PhaseScript;
use crate::stats::RequestOutcome;

/// The header `to_text` writes and `from_text` validates: bump the version
/// when the line format changes so old parsers fail loudly instead of
/// misreading.
pub const TRACE_HEADER: &str = "#bp-trace v1";

/// One trace record (a line of trace.txt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    pub start_us: Micros,
    pub latency_us: Micros,
    pub txn_type: usize,
    pub outcome: RequestOutcome,
}

impl TraceRecord {
    /// Parse one `start_us txn_type latency_us outcome` line.
    pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
        let mut parts = line.split_whitespace();
        let start_us = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or("bad start")?;
        let txn_type = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or("bad type")?;
        let latency_us = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or("bad latency")?;
        let outcome = match parts.next() {
            Some("C") => RequestOutcome::Committed,
            Some("U") => RequestOutcome::UserAborted,
            Some("F") => RequestOutcome::Failed,
            Some("S") => RequestOutcome::Shed,
            _ => return Err("bad outcome".to_string()),
        };
        Ok(TraceRecord { start_us, latency_us, txn_type, outcome })
    }

    /// Append this record's line (inverse of `parse_line`).
    pub fn write_line(&self, out: &mut String) {
        use std::fmt::Write as _;
        let o = match self.outcome {
            RequestOutcome::Committed => "C",
            RequestOutcome::UserAborted => "U",
            RequestOutcome::Failed => "F",
            RequestOutcome::Shed => "S",
        };
        // Writing into `out` directly avoids a String allocation per record
        // (writes to a String are infallible).
        let _ = writeln!(out, "{} {} {} {}", self.start_us, self.txn_type, self.latency_us, o);
    }
}

/// An in-memory trace with text import/export.
#[derive(Debug, Default)]
pub struct Trace {
    records: Mutex<Vec<TraceRecord>>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    pub fn append(&self, rec: TraceRecord) {
        self.records.lock().push(rec);
    }

    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().clone()
    }

    /// Build a trace from pre-existing records (replay/analysis helpers).
    pub fn from_records(records: Vec<TraceRecord>) -> Trace {
        Trace { records: Mutex::new(records) }
    }

    /// Serialize in the `trace.txt` line format: a [`TRACE_HEADER`] line,
    /// then one `start_us txn_type latency_us outcome` line per record.
    pub fn to_text(&self) -> String {
        let records = self.records.lock();
        let mut out = String::with_capacity(TRACE_HEADER.len() + 1 + records.len() * 24);
        out.push_str(TRACE_HEADER);
        out.push('\n');
        for r in records.iter() {
            r.write_line(&mut out);
        }
        out
    }

    /// Parse a `trace.txt` back into a trace.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        Trace::from_lines(text.lines())
    }

    /// Streaming parse: consumes one line at a time without materializing
    /// the whole input (pair with `BufRead::lines` for file-sized traces).
    ///
    /// A `#bp-trace v<N>` header line is validated when present (headerless
    /// input still parses, so pre-versioning traces keep working); other
    /// `#` comments and blank lines are skipped.
    pub fn from_lines<I>(lines: I) -> Result<Trace, String>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let trace = Trace::new();
        for (lineno, line) in lines.into_iter().enumerate() {
            let line = line.as_ref().trim();
            if line.is_empty() {
                continue;
            }
            if let Some(version) = line.strip_prefix("#bp-trace v") {
                if version.trim() != "1" {
                    return Err(format!("unsupported trace version: {line}"));
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let rec = TraceRecord::parse_line(line)
                .map_err(|m| format!("line {}: {m}", lineno + 1))?;
            trace.append(rec);
        }
        Ok(trace)
    }
}

/// Analysis results over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Delivered throughput per second.
    pub throughput: Vec<f64>,
    /// Mean latency per second (µs).
    pub latency_mean_us: Vec<f64>,
    /// Summary over the delivered throughput.
    pub throughput_summary: Summary,
    /// Count per transaction type.
    pub per_type_counts: Vec<u64>,
    /// Records whose `txn_type >= num_types` (e.g. a trace analyzed against
    /// the wrong workload). They still count toward outcomes/throughput but
    /// fit no `per_type_counts` slot; reporting them keeps mixture-tracking
    /// reports from silently under-counting.
    pub unknown_type: u64,
    pub committed: u64,
    pub user_aborted: u64,
    pub failed: u64,
    /// Requests shed by the admission controller; excluded from the
    /// throughput/latency series like every other never-executed request.
    pub shed: u64,
}

/// Target-vs-delivered comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingReport {
    pub target: Vec<f64>,
    pub delivered: Vec<f64>,
    /// Mean absolute error between the two series (tx/s).
    pub mean_abs_error: f64,
    /// Mean signed error (delivered - target).
    pub bias: f64,
    /// Seconds where delivered exceeded target by more than `tolerance`.
    pub overshoot_seconds: usize,
}

/// The Trace Analyzer of Fig. 1.
pub struct TraceAnalyzer;

impl TraceAnalyzer {
    /// Per-second roll-up of a trace.
    pub fn analyze(trace: &Trace, num_types: usize) -> TraceAnalysis {
        let records = trace.records();
        let mut completions = TimeSeries::per_second();
        let mut per_type_counts = vec![0u64; num_types];
        let mut unknown_type = 0u64;
        let mut committed = 0;
        let mut user_aborted = 0;
        let mut failed = 0;
        let mut shed = 0;
        for r in &records {
            if r.outcome == RequestOutcome::Shed {
                shed += 1;
                continue;
            }
            completions.record(r.start_us + r.latency_us, r.latency_us);
            match per_type_counts.get_mut(r.txn_type) {
                Some(c) => *c += 1,
                None => unknown_type += 1,
            }
            match r.outcome {
                RequestOutcome::Committed => committed += 1,
                RequestOutcome::UserAborted => user_aborted += 1,
                RequestOutcome::Failed => failed += 1,
                RequestOutcome::Shed => unreachable!("shed skipped above"),
            }
        }
        let throughput = completions.rates();
        TraceAnalysis {
            throughput_summary: Summary::of(&throughput),
            latency_mean_us: completions.means(),
            throughput,
            per_type_counts,
            unknown_type,
            committed,
            user_aborted,
            failed,
            shed,
        }
    }

    /// Compare a trace against a phase script's target schedule.
    ///
    /// `tolerance` is the relative overshoot allowed before a second counts
    /// as exceeding the target (the never-exceed check).
    pub fn tracking(
        trace: &Trace,
        script: &PhaseScript,
        unlimited_rate: f64,
        tolerance: f64,
    ) -> TrackingReport {
        let analysis = Self::analyze(trace, 1);
        let seconds = script.total_duration_us().div_ceil(MICROS_PER_SEC) as usize;
        let target = script.target_series(seconds, unlimited_rate);
        let mut delivered = analysis.throughput;
        delivered.resize(seconds, 0.0);
        let delivered = delivered[..seconds].to_vec();
        let mae = mean_abs_error(&target, &delivered);
        let bias = delivered
            .iter()
            .zip(&target)
            .map(|(d, t)| d - t)
            .sum::<f64>()
            / seconds.max(1) as f64;
        let overshoot_seconds = delivered
            .iter()
            .zip(&target)
            .filter(|(d, t)| **d > **t * (1.0 + tolerance) + 1.0)
            .count();
        TrackingReport { target, delivered, mean_abs_error: mae, bias, overshoot_seconds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{Phase, Rate};

    fn rec(start_us: Micros, ty: usize, latency: Micros) -> TraceRecord {
        TraceRecord { start_us, latency_us: latency, txn_type: ty, outcome: RequestOutcome::Committed }
    }

    #[test]
    fn text_roundtrip() {
        let t = Trace::new();
        t.append(rec(100, 0, 500));
        t.append(TraceRecord {
            start_us: 200,
            latency_us: 900,
            txn_type: 2,
            outcome: RequestOutcome::Failed,
        });
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn from_text_skips_comments_and_rejects_garbage() {
        let t = Trace::from_text("# header\n100 0 10 C\n\n200 1 20 U\n").unwrap();
        assert_eq!(t.len(), 2);
        assert!(Trace::from_text("not a line").is_err());
        assert!(Trace::from_text("1 2 3 X").is_err());
    }

    #[test]
    fn to_text_emits_versioned_header() {
        let t = Trace::new();
        t.append(rec(1, 0, 2));
        let text = t.to_text();
        assert!(text.starts_with(&format!("{TRACE_HEADER}\n")), "{text}");
        // Future versions are rejected, not misread.
        assert!(Trace::from_text("#bp-trace v2\n1 0 2 C").is_err());
        // Headerless (pre-versioning) input still parses.
        assert_eq!(Trace::from_text("1 0 2 C").unwrap().len(), 1);
    }

    #[test]
    fn streaming_parse_from_reader() {
        use std::io::BufRead as _;
        let t = Trace::new();
        for i in 0..1000u64 {
            t.append(TraceRecord {
                start_us: i * 500,
                latency_us: i % 97,
                txn_type: (i % 3) as usize,
                outcome: match i % 4 {
                    0 => RequestOutcome::Committed,
                    1 => RequestOutcome::UserAborted,
                    2 => RequestOutcome::Failed,
                    _ => RequestOutcome::Shed,
                },
            });
        }
        let text = t.to_text();
        // Feed line-by-line through a BufRead, never holding the full text.
        let reader = std::io::BufReader::new(text.as_bytes());
        let back = Trace::from_lines(reader.lines().map(|l| l.unwrap())).unwrap();
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn unknown_type_bucket_roundtrips() {
        let t = Trace::new();
        t.append(rec(0, 0, 10));
        t.append(rec(1_000, 7, 10)); // out of range for a 2-type workload
        let back = Trace::from_text(&t.to_text()).unwrap();
        let a = TraceAnalyzer::analyze(&back, 2);
        assert_eq!(a.per_type_counts, vec![1, 0]);
        assert_eq!(a.unknown_type, 1);
    }

    #[test]
    fn shed_round_trips_and_stays_out_of_throughput() {
        let t = Trace::new();
        t.append(rec(0, 0, 100));
        t.append(TraceRecord {
            start_us: 1_000,
            latency_us: 0,
            txn_type: 0,
            outcome: RequestOutcome::Shed,
        });
        let back = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(back.records(), t.records());
        let a = TraceAnalyzer::analyze(&back, 1);
        assert_eq!(a.shed, 1);
        assert_eq!(a.committed, 1);
        assert_eq!(a.per_type_counts, vec![1], "shed fits no type bucket");
        assert_eq!(a.throughput.iter().sum::<f64>() as u64, 1);
    }

    #[test]
    fn analyze_per_second() {
        let t = Trace::new();
        // 100 tx finishing in second 0, 50 in second 1.
        for i in 0..100u64 {
            t.append(rec(i * 9_000, 0, 100));
        }
        for i in 0..50u64 {
            t.append(rec(MICROS_PER_SEC + i * 10_000, 1, 100));
        }
        let a = TraceAnalyzer::analyze(&t, 2);
        assert_eq!(a.throughput[0], 100.0);
        assert_eq!(a.throughput[1], 50.0);
        assert_eq!(a.per_type_counts, vec![100, 50]);
        assert_eq!(a.unknown_type, 0);
        assert_eq!(a.committed, 150);
    }

    #[test]
    fn analyze_counts_out_of_range_types() {
        let t = Trace::new();
        t.append(rec(0, 0, 100));
        t.append(rec(1_000, 5, 100)); // type beyond num_types
        t.append(rec(2_000, 9, 100));
        let a = TraceAnalyzer::analyze(&t, 2);
        assert_eq!(a.per_type_counts, vec![1, 0]);
        assert_eq!(a.unknown_type, 2, "overflow records must be reported");
        // They still count toward outcome totals.
        assert_eq!(a.committed, 3);
    }

    #[test]
    fn tracking_perfect_delivery() {
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 2.0)]);
        let t = Trace::new();
        for s in 0..2u64 {
            for i in 0..100u64 {
                t.append(rec(s * MICROS_PER_SEC + i * 10_000, 0, 100));
            }
        }
        let r = TraceAnalyzer::tracking(&t, &script, 1e6, 0.05);
        assert!(r.mean_abs_error < 1.0, "{}", r.mean_abs_error);
        assert_eq!(r.overshoot_seconds, 0);
    }

    #[test]
    fn tracking_detects_overshoot() {
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(10.0), 1.0)]);
        let t = Trace::new();
        for i in 0..50u64 {
            t.append(rec(i * 15_000, 0, 100));
        }
        let r = TraceAnalyzer::tracking(&t, &script, 1e6, 0.05);
        assert_eq!(r.overshoot_seconds, 1);
        assert!(r.bias > 30.0);
    }

    #[test]
    fn tracking_underdelivery_has_negative_bias() {
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 1.0)]);
        let t = Trace::new();
        for i in 0..40u64 {
            t.append(rec(i * 20_000, 0, 100));
        }
        let r = TraceAnalyzer::tracking(&t, &script, 1e6, 0.05);
        assert!(r.bias < -50.0);
        assert_eq!(r.overshoot_seconds, 0);
    }
}
