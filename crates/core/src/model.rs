//! Analytic DBMS capacity models for deterministic simulation.
//!
//! The demo's game stages are real DBMS installations whose throughput
//! responds to the requested load with saturation, contention, lag and
//! jitter. For deterministic, millisecond-fast experiments (and the game's
//! physics tests) we model a DBMS as a fluid capacity curve:
//!
//! * capacity shrinks with the mixture's write share (lock contention) and
//!   mean transaction cost;
//! * past saturation, delivered throughput *droops* below peak ("in the
//!   worst case, the performance may actually get worse", §4.1.2);
//! * delivered throughput follows requested throughput with a first-order
//!   lag (systems take time to ramp);
//! * a personality-specific jitter perturbs the output (Derby-like stages
//!   "produce oscillating throughputs" and fail tunnel tests, §4.3).

use bp_util::rng::Rng;

/// Parameters of one simulated DBMS stage.
#[derive(Debug, Clone)]
pub struct CapacityModel {
    pub name: &'static str,
    /// Peak throughput at a pure-read, cost-1 mixture (tx/s).
    pub base_capacity: f64,
    /// Capacity multiplier at a 100%-write mixture (lock contention).
    pub write_penalty: f64,
    /// How much delivered rate droops past saturation (0 = flat cap).
    pub overload_droop: f64,
    /// First-order response time constant (seconds).
    pub response_tau_s: f64,
    /// Relative jitter of the delivered rate.
    pub jitter: f64,
    /// Service latency at idle (µs).
    pub base_latency_us: f64,
}

impl CapacityModel {
    pub fn mysql_like() -> CapacityModel {
        CapacityModel {
            name: "mysql",
            base_capacity: 2_200.0,
            write_penalty: 0.45,
            overload_droop: 0.15,
            response_tau_s: 0.35,
            jitter: 0.04,
            base_latency_us: 900.0,
        }
    }

    pub fn postgres_like() -> CapacityModel {
        CapacityModel {
            name: "postgres",
            base_capacity: 1_900.0,
            write_penalty: 0.55,
            overload_droop: 0.10,
            response_tau_s: 0.45,
            jitter: 0.03,
            base_latency_us: 1_100.0,
        }
    }

    pub fn derby_like() -> CapacityModel {
        CapacityModel {
            name: "derby",
            base_capacity: 600.0,
            write_penalty: 0.25,
            overload_droop: 0.35,
            response_tau_s: 0.8,
            jitter: 0.18,
            base_latency_us: 4_000.0,
        }
    }

    pub fn oracle_like() -> CapacityModel {
        CapacityModel {
            name: "oracle",
            base_capacity: 2_600.0,
            write_penalty: 0.55,
            overload_droop: 0.08,
            response_tau_s: 0.25,
            jitter: 0.015,
            base_latency_us: 700.0,
        }
    }

    pub fn by_name(name: &str) -> Option<CapacityModel> {
        match name.to_ascii_lowercase().as_str() {
            "mysql" => Some(Self::mysql_like()),
            "postgres" | "postgresql" => Some(Self::postgres_like()),
            "derby" => Some(Self::derby_like()),
            "oracle" => Some(Self::oracle_like()),
            _ => None,
        }
    }

    pub fn all() -> Vec<CapacityModel> {
        vec![
            Self::mysql_like(),
            Self::postgres_like(),
            Self::derby_like(),
            Self::oracle_like(),
        ]
    }

    /// Effective capacity for a mixture: `write_share` in [0,1], `mean_cost`
    /// the mixture-weighted relative transaction cost (>= ~0.1).
    pub fn capacity(&self, write_share: f64, mean_cost: f64) -> f64 {
        let w = write_share.clamp(0.0, 1.0);
        let contention = 1.0 - w * (1.0 - self.write_penalty);
        self.base_capacity * contention / mean_cost.max(0.1)
    }

    /// Steady-state delivered rate for a requested rate (no lag/jitter).
    pub fn steady_delivered(&self, requested: f64, write_share: f64, mean_cost: f64) -> f64 {
        let cap = self.capacity(write_share, mean_cost);
        if requested <= cap {
            requested.max(0.0)
        } else {
            // Past saturation the delivered rate droops toward
            // `cap * (1 - droop)` as overload grows (bounded degradation).
            let overload = 1.0 - cap / requested; // in (0, 1)
            cap * (1.0 - self.overload_droop * overload)
        }
    }

    /// Mean latency at the given utilization (simple M/M/1-flavored blowup).
    pub fn latency_us(&self, requested: f64, write_share: f64, mean_cost: f64) -> f64 {
        let cap = self.capacity(write_share, mean_cost);
        let rho = (requested / cap).clamp(0.0, 0.98);
        self.base_latency_us / (1.0 - rho)
    }
}

/// Stateful simulated DBMS: applies lag and jitter tick by tick.
#[derive(Debug, Clone)]
pub struct SimDbms {
    pub model: CapacityModel,
    delivered: f64,
    rng: Rng,
}

impl SimDbms {
    pub fn new(model: CapacityModel, seed: u64) -> SimDbms {
        SimDbms { model, delivered: 0.0, rng: Rng::new(seed) }
    }

    /// Advance one tick of `dt_s` seconds with the given offered load.
    /// Returns the delivered throughput for this tick (tx/s).
    pub fn tick(&mut self, requested: f64, write_share: f64, mean_cost: f64, dt_s: f64) -> f64 {
        let target = self.model.steady_delivered(requested, write_share, mean_cost);
        let alpha = (dt_s / self.model.response_tau_s).clamp(0.0, 1.0);
        self.delivered += (target - self.delivered) * alpha;
        let noise = if self.model.jitter > 0.0 {
            1.0 + self.rng.normal(0.0, self.model.jitter)
        } else {
            1.0
        };
        (self.delivered * noise).max(0.0)
    }

    /// Smoothed (noise-free) internal state.
    pub fn smoothed(&self) -> f64 {
        self.delivered
    }

    /// Reset dynamics (e.g. after a database reset).
    pub fn reset(&mut self) {
        self.delivered = 0.0;
    }
}

/// A shared simulated server hosting several tenants: capacity is divided
/// in proportion to demand when oversubscribed (multi-tenancy, §2.2.3).
#[derive(Debug, Clone)]
pub struct SimServer {
    pub model: CapacityModel,
    tenants: Vec<SimDbms>,
}

impl SimServer {
    pub fn new(model: CapacityModel, tenant_count: usize, seed: u64) -> SimServer {
        let tenants = (0..tenant_count)
            .map(|i| SimDbms::new(model.clone(), seed ^ ((i as u64 + 1) * 0x9E37)))
            .collect();
        SimServer { model, tenants }
    }

    /// Tick all tenants with their offered loads; returns per-tenant
    /// delivered throughput.
    pub fn tick(&mut self, demands: &[(f64, f64, f64)], dt_s: f64) -> Vec<f64> {
        assert_eq!(demands.len(), self.tenants.len());
        // Total capacity at a blended mixture.
        let total_requested: f64 = demands.iter().map(|d| d.0).sum();
        let blended_write = if total_requested > 0.0 {
            demands.iter().map(|d| d.0 * d.1).sum::<f64>() / total_requested
        } else {
            0.0
        };
        let blended_cost = if total_requested > 0.0 {
            demands.iter().map(|d| d.0 * d.2).sum::<f64>() / total_requested
        } else {
            1.0
        };
        let cap = self.model.capacity(blended_write, blended_cost);
        // Proportional share when oversubscribed.
        let scale = if total_requested > cap && total_requested > 0.0 {
            cap / total_requested
        } else {
            1.0
        };
        demands
            .iter()
            .zip(&mut self.tenants)
            .map(|(&(req, w, c), t)| t.tick(req * scale, w, c, dt_s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_drops_with_writes() {
        let m = CapacityModel::mysql_like();
        let read_cap = m.capacity(0.0, 1.0);
        let write_cap = m.capacity(1.0, 1.0);
        assert!(read_cap > write_cap * 1.8, "read {read_cap} write {write_cap}");
        assert!((write_cap - m.base_capacity * m.write_penalty).abs() < 1e-9);
    }

    #[test]
    fn under_capacity_delivers_requested() {
        let m = CapacityModel::mysql_like();
        assert!((m.steady_delivered(500.0, 0.5, 1.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn over_capacity_droops() {
        let m = CapacityModel::mysql_like();
        let cap = m.capacity(0.5, 1.0);
        let at_cap = m.steady_delivered(cap, 0.5, 1.0);
        let over = m.steady_delivered(cap * 3.0, 0.5, 1.0);
        assert!(over < at_cap, "worse-than-saturated: {over} < {at_cap}");
        assert!(over > at_cap * 0.5);
    }

    #[test]
    fn latency_blows_up_near_saturation() {
        let m = CapacityModel::postgres_like();
        let idle = m.latency_us(10.0, 0.0, 1.0);
        let busy = m.latency_us(m.capacity(0.0, 1.0) * 0.95, 0.0, 1.0);
        assert!(busy > idle * 5.0);
    }

    #[test]
    fn lag_ramps_smoothly() {
        let m = CapacityModel { jitter: 0.0, ..CapacityModel::mysql_like() };
        let mut sim = SimDbms::new(m, 1);
        let mut last = 0.0;
        for _ in 0..20 {
            let d = sim.tick(1_000.0, 0.0, 1.0, 0.1);
            assert!(d >= last - 1e-9, "non-monotonic ramp");
            last = d;
        }
        assert!((last - 1_000.0).abs() < 30.0, "settled at {last}");
    }

    #[test]
    fn derby_jitters_more_than_oracle() {
        let mut derby = SimDbms::new(CapacityModel::derby_like(), 7);
        let mut oracle = SimDbms::new(CapacityModel::oracle_like(), 7);
        // Warm to steady state.
        for _ in 0..50 {
            derby.tick(300.0, 0.2, 1.0, 0.1);
            oracle.tick(300.0, 0.2, 1.0, 0.1);
        }
        let dv: Vec<f64> = (0..200).map(|_| derby.tick(300.0, 0.2, 1.0, 0.1)).collect();
        let ov: Vec<f64> = (0..200).map(|_| oracle.tick(300.0, 0.2, 1.0, 0.1)).collect();
        let cv = |v: &[f64]| bp_util::timeseries::Summary::of(v).cv();
        assert!(cv(&dv) > cv(&ov) * 3.0, "derby cv {} oracle cv {}", cv(&dv), cv(&ov));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimDbms::new(CapacityModel::mysql_like(), 42);
        let mut b = SimDbms::new(CapacityModel::mysql_like(), 42);
        for _ in 0..100 {
            assert_eq!(
                a.tick(800.0, 0.3, 1.0, 0.1),
                b.tick(800.0, 0.3, 1.0, 0.1)
            );
        }
    }

    #[test]
    fn multi_tenant_shares_capacity() {
        let model = CapacityModel { jitter: 0.0, ..CapacityModel::mysql_like() };
        let cap = model.capacity(0.0, 1.0);
        let mut server = SimServer::new(model, 2, 1);
        // Each tenant asks for the full capacity: each should get ~half.
        let mut t1 = 0.0;
        let mut t2 = 0.0;
        for _ in 0..100 {
            let d = server.tick(&[(cap, 0.0, 1.0), (cap, 0.0, 1.0)], 0.1);
            t1 = d[0];
            t2 = d[1];
        }
        assert!((t1 - cap / 2.0).abs() < cap * 0.1, "t1 {t1} vs {cap}");
        assert!((t2 - cap / 2.0).abs() < cap * 0.1);
    }

    #[test]
    fn single_tenant_unaffected_by_idle_neighbor() {
        let model = CapacityModel { jitter: 0.0, ..CapacityModel::mysql_like() };
        let mut server = SimServer::new(model, 2, 1);
        let mut d0 = 0.0;
        for _ in 0..100 {
            d0 = server.tick(&[(500.0, 0.0, 1.0), (0.0, 0.0, 1.0)], 0.1)[0];
        }
        assert!((d0 - 500.0).abs() < 10.0, "{d0}");
    }

    #[test]
    fn model_lookup() {
        for m in CapacityModel::all() {
            assert_eq!(CapacityModel::by_name(m.name).unwrap().name, m.name);
        }
        assert!(CapacityModel::by_name("nope").is_none());
    }
}
