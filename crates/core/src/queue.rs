//! The centralized request queue (§2.1, §2.2.1).
//!
//! "Using a centralized queue allows us to control the throughput from one
//! location without needing to coordinate the multiple threads."
//!
//! The Workload Manager pushes timestamped arrivals; workers pull. Two rules
//! give the paper's *never-exceed* guarantee:
//!
//! 1. a request may not be dispatched before its scheduled arrival time, and
//! 2. dispatches are additionally gated to the current target spacing, so a
//!    backlog drains at the target rate instead of bursting ("the remainder
//!    is postponed in such a way that the framework never exceeds the
//!    target rate").

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use bp_util::sync::{Condvar, Mutex};

use bp_util::clock::{Micros, SharedClock};

/// One work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Scheduled arrival time (µs since run start).
    pub arrival: Micros,
    /// Sequence number (for tracing).
    pub seq: u64,
    /// Transaction type, pinned at generation time. Sampling the mixture on
    /// the manager thread (not in workers) is what makes a schedule a pure
    /// function of the seed: worker pull order can no longer change which
    /// request gets which type, so a recorded schedule replays byte-for-byte.
    pub txn_type: u16,
    /// Phase index active when the request was generated.
    pub phase: u16,
}

/// One pre-planned request inside a `ScheduleSource` window: arrival offset
/// relative to the window start plus the pinned transaction type and phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledRequest {
    pub offset_us: Micros,
    pub txn_type: u16,
    pub phase: u16,
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<Request>,
    /// Earliest time the next dispatch may happen (rate gate).
    next_dispatch: Micros,
    closed: bool,
}

/// The central request queue.
pub struct RequestQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    clock: SharedClock,
    /// Current dispatch spacing in µs (0 = no gating, i.e. unlimited).
    spacing_us: AtomicU64,
    seq: AtomicU64,
    dispatched: AtomicU64,
    /// Cumulative scheduled-arrival → dispatch wait across all dispatches
    /// (µs). With `dispatched` this gives the mean queue wait without
    /// merging any histogram — the cheap signal the metrics registry and
    /// saturation checks read.
    queue_wait_us: AtomicU64,
}

impl RequestQueue {
    pub fn new(clock: SharedClock) -> RequestQueue {
        RequestQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            clock,
            spacing_us: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            queue_wait_us: AtomicU64::new(0),
        }
    }

    /// Update the dispatch gate for a new target rate (requests/second).
    pub fn set_rate(&self, tps: f64) {
        let spacing = if tps <= 0.0 || !tps.is_finite() {
            0
        } else {
            (1_000_000.0 / tps) as u64
        };
        self.spacing_us.store(spacing, Ordering::Relaxed);
        self.cond.notify_all();
    }

    /// Enqueue arrivals (already stamped with absolute times). Requests get
    /// type/phase 0 — used by benches and tests that bypass the manager.
    pub fn push_arrivals(&self, arrivals: impl IntoIterator<Item = Micros>) {
        let mut st = self.state.lock();
        for arrival in arrivals {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            st.queue.push_back(Request { arrival, seq, txn_type: 0, phase: 0 });
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Enqueue a schedule window: offsets are relative to `base` and each
    /// request carries its pinned transaction type and phase.
    pub fn push_scheduled(&self, base: Micros, reqs: impl IntoIterator<Item = ScheduledRequest>) {
        let mut st = self.state.lock();
        for r in reqs {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            st.queue.push_back(Request {
                arrival: base + r.offset_us,
                seq,
                txn_type: r.txn_type,
                phase: r.phase,
            });
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Number of requests waiting (the backlog).
    pub fn backlog(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Total requests ever dispatched.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Cumulative arrival→dispatch wait over all dispatches (µs).
    pub fn total_queue_wait_us(&self) -> u64 {
        self.queue_wait_us.load(Ordering::Relaxed)
    }

    /// Mean arrival→dispatch wait (µs); 0 before the first dispatch.
    pub fn mean_queue_wait_us(&self) -> f64 {
        let n = self.dispatched();
        if n == 0 {
            0.0
        } else {
            self.total_queue_wait_us() as f64 / n as f64
        }
    }

    /// Remove all pending requests (rate drop / phase reset), returning how
    /// many were discarded.
    pub fn drain(&self) -> usize {
        let mut st = self.state.lock();
        let n = st.queue.len();
        st.queue.clear();
        n
    }

    /// Close the queue: pullers get `None` once empty.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Blocking pull honoring arrival times and the rate gate. Returns
    /// `None` when the queue is closed. `max_wait_us` bounds each internal
    /// wait so callers can re-check external conditions.
    pub fn pull(&self, max_wait_us: Micros) -> Option<Request> {
        loop {
            let mut st = self.state.lock();
            if st.closed {
                return None;
            }
            let now = self.clock.now();
            if let Some(&head) = st.queue.front() {
                let gate = head.arrival.max(st.next_dispatch);
                if now >= gate {
                    let req = st.queue.pop_front().expect("head exists");
                    let spacing = self.spacing_us.load(Ordering::Relaxed);
                    // Token-bucket with one spacing of credit: anchoring
                    // on the gate's own schedule avoids cumulative drift
                    // from late dispatches, while clamping to (now - one
                    // spacing) keeps an old backlog from bursting past the
                    // target rate.
                    st.next_dispatch = gate.max(now.saturating_sub(spacing)) + spacing;
                    self.dispatched.fetch_add(1, Ordering::Relaxed);
                    self.queue_wait_us
                        .fetch_add(now.saturating_sub(req.arrival), Ordering::Relaxed);
                    return Some(req);
                }
                // Wait until the gate opens (or something changes).
                let wait = (gate - now).min(max_wait_us);
                let timeout = std::time::Duration::from_micros(wait.max(1));
                self.cond.wait_for(&mut st, timeout);
            } else {
                let timeout = std::time::Duration::from_micros(max_wait_us.max(1));
                self.cond.wait_for(&mut st, timeout);
            }
            // Loop re-checks closed/head/gate.
        }
    }

    /// Non-blocking pull used by tests and the DES executor.
    pub fn try_pull(&self) -> Option<Request> {
        let mut st = self.state.lock();
        if st.closed {
            return None;
        }
        let now = self.clock.now();
        let head = *st.queue.front()?;
        let gate = head.arrival.max(st.next_dispatch);
        if now < gate {
            return None;
        }
        st.queue.pop_front();
        let spacing = self.spacing_us.load(Ordering::Relaxed);
        st.next_dispatch = gate.max(now.saturating_sub(spacing)) + spacing;
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_us
            .fetch_add(now.saturating_sub(head.arrival), Ordering::Relaxed);
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_util::clock::{sim_clock, MICROS_PER_SEC};

    #[test]
    fn fifo_dispatch_after_arrival_time() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([100, 200, 300]);
        assert_eq!(q.try_pull(), None, "nothing has arrived yet");
        sim.advance_to(150);
        assert_eq!(q.try_pull().unwrap().arrival, 100);
        assert_eq!(q.try_pull(), None, "200 still in the future");
        sim.advance_to(301);
        assert_eq!(q.try_pull().unwrap().arrival, 200);
        assert_eq!(q.try_pull().unwrap().arrival, 300);
        assert_eq!(q.dispatched(), 3);
    }

    #[test]
    fn rate_gate_prevents_burst_drain() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(1000.0); // 1000 µs spacing
        // 10 requests all overdue (backlog).
        q.push_arrivals((0..10).map(|i| i * 10));
        sim.advance_to(MICROS_PER_SEC); // way past all arrivals
        // The token bucket grants one spacing of catch-up credit, so two
        // dispatches may fire back-to-back at drain start...
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some(), "one catch-up credit allowed");
        // ...after which drains are strictly paced at the target spacing.
        assert!(q.try_pull().is_none(), "gated by spacing");
        sim.advance(999);
        assert!(q.try_pull().is_none());
        sim.advance(1);
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_none(), "still one per spacing");
    }

    #[test]
    fn unlimited_rate_no_gate() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(0.0); // no gating
        q.push_arrivals([0, 0, 0]);
        sim.advance_to(1);
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some());
    }

    #[test]
    fn backlog_and_drain() {
        let (_, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([1, 2, 3]);
        assert_eq!(q.backlog(), 3);
        assert_eq!(q.drain(), 3);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn close_wakes_pullers() {
        let (_, clock) = sim_clock();
        let q = std::sync::Arc::new(RequestQueue::new(clock));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pull(50_000));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn blocking_pull_with_wallclock() {
        use bp_util::clock::wall_clock;
        let clock = wall_clock();
        let q = std::sync::Arc::new(RequestQueue::new(clock.clone()));
        let now = clock.now();
        q.push_arrivals([now + 20_000]); // 20ms in the future
        let got = q.pull(MICROS_PER_SEC).unwrap();
        let elapsed = clock.now() - now;
        assert!(elapsed >= 18_000, "dispatched too early: {elapsed}µs");
        assert_eq!(got.arrival, now + 20_000);
    }

    #[test]
    fn queue_wait_accumulates() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([100, 200]);
        assert_eq!(q.total_queue_wait_us(), 0);
        sim.advance_to(500);
        q.try_pull().unwrap(); // waited 400
        q.try_pull().unwrap(); // waited 300
        assert_eq!(q.total_queue_wait_us(), 700);
        assert!((q.mean_queue_wait_us() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn push_scheduled_pins_type_and_phase() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_scheduled(
            1_000,
            [
                ScheduledRequest { offset_us: 0, txn_type: 3, phase: 1 },
                ScheduledRequest { offset_us: 250, txn_type: 0, phase: 2 },
            ],
        );
        sim.advance_to(2_000);
        let a = q.try_pull().unwrap();
        assert_eq!((a.arrival, a.txn_type, a.phase), (1_000, 3, 1));
        let b = q.try_pull().unwrap();
        assert_eq!((b.arrival, b.txn_type, b.phase), (1_250, 0, 2));
        assert!(a.seq < b.seq);
    }

    #[test]
    fn sequence_numbers_monotonic() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([0, 0]);
        q.push_arrivals([0]);
        sim.advance_to(10);
        let a = q.try_pull().unwrap();
        let b = q.try_pull().unwrap();
        let c = q.try_pull().unwrap();
        assert!(a.seq < b.seq && b.seq < c.seq);
    }
}
