//! The centralized request queue (§2.1, §2.2.1).
//!
//! "Using a centralized queue allows us to control the throughput from one
//! location without needing to coordinate the multiple threads."
//!
//! The Workload Manager pushes timestamped arrivals; workers pull. Two rules
//! give the paper's *never-exceed* guarantee:
//!
//! 1. a request may not be dispatched before its scheduled arrival time, and
//! 2. dispatches are additionally gated to the current target spacing, so a
//!    backlog drains at the target rate instead of bursting ("the remainder
//!    is postponed in such a way that the framework never exceeds the
//!    target rate").

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use bp_util::sync::{Condvar, Mutex};

use bp_util::clock::{Micros, SharedClock};

/// One work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Scheduled arrival time (µs since run start).
    pub arrival: Micros,
    /// Sequence number (for tracing).
    pub seq: u64,
    /// Transaction type, pinned at generation time. Sampling the mixture on
    /// the manager thread (not in workers) is what makes a schedule a pure
    /// function of the seed: worker pull order can no longer change which
    /// request gets which type, so a recorded schedule replays byte-for-byte.
    pub txn_type: u16,
    /// Phase index active when the request was generated.
    pub phase: u16,
}

/// One pre-planned request inside a `ScheduleSource` window: arrival offset
/// relative to the window start plus the pinned transaction type and phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledRequest {
    pub offset_us: Micros,
    pub txn_type: u16,
    pub phase: u16,
}

/// Nanoseconds per microsecond: the gate runs in nanos so fractional
/// µs spacings (any rate above ~1k tx/s) are not truncated away.
const NANOS_PER_MICRO: u64 = 1_000;

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<Request>,
    /// Earliest time the next dispatch may happen (rate gate), in nanos.
    next_dispatch_ns: u64,
    /// Schedule anchor of the most recent dispatch (nanos). `None` until
    /// the first dispatch so a `set_rate` during setup cannot delay the
    /// run's very first request by one spacing.
    last_gate_ns: Option<u64>,
    closed: bool,
}

/// The central request queue.
pub struct RequestQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    clock: SharedClock,
    /// Current dispatch spacing in nanos (0 = no gating, i.e. unlimited).
    spacing_ns: AtomicU64,
    seq: AtomicU64,
    dispatched: AtomicU64,
    /// Cumulative scheduled-arrival → dispatch wait across all dispatches
    /// (µs). With `dispatched` this gives the mean queue wait without
    /// merging any histogram — the cheap signal the metrics registry and
    /// saturation checks read.
    queue_wait_us: AtomicU64,
}

impl RequestQueue {
    pub fn new(clock: SharedClock) -> RequestQueue {
        RequestQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            clock,
            spacing_ns: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            queue_wait_us: AtomicU64::new(0),
        }
    }

    /// Update the dispatch gate for a new target rate (requests/second).
    ///
    /// The gate is re-anchored to the last dispatch's schedule point under
    /// the *new* spacing: stepping the rate down immediately pushes
    /// `next_dispatch` back (no overshoot burst under stale spacing right
    /// after a downward adjustment — the SLO controller depends on this),
    /// and stepping it up pulls the gate forward.
    pub fn set_rate(&self, tps: f64) {
        let spacing = if tps <= 0.0 || !tps.is_finite() {
            0
        } else {
            ((1_000_000_000.0 / tps).round() as u64).max(1)
        };
        self.spacing_ns.store(spacing, Ordering::Relaxed);
        let mut st = self.state.lock();
        st.next_dispatch_ns = match st.last_gate_ns {
            Some(gate) if spacing > 0 => gate.saturating_add(spacing),
            _ => 0,
        };
        drop(st);
        self.cond.notify_all();
    }

    /// Enqueue arrivals (already stamped with absolute times). Requests get
    /// type/phase 0 — used by benches and tests that bypass the manager.
    pub fn push_arrivals(&self, arrivals: impl IntoIterator<Item = Micros>) {
        let mut st = self.state.lock();
        for arrival in arrivals {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            st.queue.push_back(Request { arrival, seq, txn_type: 0, phase: 0 });
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Enqueue a schedule window: offsets are relative to `base` and each
    /// request carries its pinned transaction type and phase.
    pub fn push_scheduled(&self, base: Micros, reqs: impl IntoIterator<Item = ScheduledRequest>) {
        let mut st = self.state.lock();
        for r in reqs {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            st.queue.push_back(Request {
                arrival: base + r.offset_us,
                seq,
                txn_type: r.txn_type,
                phase: r.phase,
            });
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Number of requests waiting (the backlog).
    pub fn backlog(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Total requests ever dispatched.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Cumulative arrival→dispatch wait over all dispatches (µs).
    pub fn total_queue_wait_us(&self) -> u64 {
        self.queue_wait_us.load(Ordering::Relaxed)
    }

    /// Mean arrival→dispatch wait (µs); 0 before the first dispatch.
    pub fn mean_queue_wait_us(&self) -> f64 {
        let n = self.dispatched();
        if n == 0 {
            0.0
        } else {
            self.total_queue_wait_us() as f64 / n as f64
        }
    }

    /// Remove all pending requests (rate drop / phase reset), returning how
    /// many were discarded.
    pub fn drain(&self) -> usize {
        let mut st = self.state.lock();
        let n = st.queue.len();
        st.queue.clear();
        n
    }

    /// Close the queue: pullers get `None` once empty.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Blocking pull honoring arrival times and the rate gate. Returns
    /// `None` when the queue is closed. `max_wait_us` bounds each internal
    /// wait so callers can re-check external conditions.
    pub fn pull(&self, max_wait_us: Micros) -> Option<Request> {
        loop {
            let mut st = self.state.lock();
            if st.closed {
                return None;
            }
            let now_ns = self.clock.now() * NANOS_PER_MICRO;
            if let Some(&head) = st.queue.front() {
                let gate_ns = (head.arrival * NANOS_PER_MICRO).max(st.next_dispatch_ns);
                if now_ns >= gate_ns {
                    let req = st.queue.pop_front().expect("head exists");
                    let spacing = self.spacing_ns.load(Ordering::Relaxed);
                    // Token-bucket with one spacing of credit: anchoring
                    // on the gate's own schedule avoids cumulative drift
                    // from late dispatches, while clamping to (now - one
                    // credit) keeps an old backlog from bursting past the
                    // target rate. The credit is at least one clock
                    // quantum (1µs) so sub-µs spacings don't lose schedule
                    // to clock granularity.
                    let credit = spacing.max(NANOS_PER_MICRO);
                    let anchor = gate_ns.max(now_ns.saturating_sub(credit));
                    st.last_gate_ns = Some(anchor);
                    st.next_dispatch_ns = anchor + spacing;
                    self.dispatched.fetch_add(1, Ordering::Relaxed);
                    self.queue_wait_us.fetch_add(
                        (now_ns / NANOS_PER_MICRO).saturating_sub(req.arrival),
                        Ordering::Relaxed,
                    );
                    return Some(req);
                }
                // Wait until the gate opens (or something changes).
                let wait = (gate_ns - now_ns).div_ceil(NANOS_PER_MICRO).min(max_wait_us);
                let timeout = std::time::Duration::from_micros(wait.max(1));
                self.cond.wait_for(&mut st, timeout);
            } else {
                let timeout = std::time::Duration::from_micros(max_wait_us.max(1));
                self.cond.wait_for(&mut st, timeout);
            }
            // Loop re-checks closed/head/gate.
        }
    }

    /// Non-blocking pull used by tests and the DES executor.
    pub fn try_pull(&self) -> Option<Request> {
        let mut st = self.state.lock();
        if st.closed {
            return None;
        }
        let now_ns = self.clock.now() * NANOS_PER_MICRO;
        let head = *st.queue.front()?;
        let gate_ns = (head.arrival * NANOS_PER_MICRO).max(st.next_dispatch_ns);
        if now_ns < gate_ns {
            return None;
        }
        st.queue.pop_front();
        let spacing = self.spacing_ns.load(Ordering::Relaxed);
        let credit = spacing.max(NANOS_PER_MICRO);
        let anchor = gate_ns.max(now_ns.saturating_sub(credit));
        st.last_gate_ns = Some(anchor);
        st.next_dispatch_ns = anchor + spacing;
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_us.fetch_add(
            (now_ns / NANOS_PER_MICRO).saturating_sub(head.arrival),
            Ordering::Relaxed,
        );
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_util::clock::{sim_clock, MICROS_PER_SEC};

    #[test]
    fn fifo_dispatch_after_arrival_time() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([100, 200, 300]);
        assert_eq!(q.try_pull(), None, "nothing has arrived yet");
        sim.advance_to(150);
        assert_eq!(q.try_pull().unwrap().arrival, 100);
        assert_eq!(q.try_pull(), None, "200 still in the future");
        sim.advance_to(301);
        assert_eq!(q.try_pull().unwrap().arrival, 200);
        assert_eq!(q.try_pull().unwrap().arrival, 300);
        assert_eq!(q.dispatched(), 3);
    }

    #[test]
    fn rate_gate_prevents_burst_drain() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(1000.0); // 1000 µs spacing
        // 10 requests all overdue (backlog).
        q.push_arrivals((0..10).map(|i| i * 10));
        sim.advance_to(MICROS_PER_SEC); // way past all arrivals
        // The token bucket grants one spacing of catch-up credit, so two
        // dispatches may fire back-to-back at drain start...
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some(), "one catch-up credit allowed");
        // ...after which drains are strictly paced at the target spacing.
        assert!(q.try_pull().is_none(), "gated by spacing");
        sim.advance(999);
        assert!(q.try_pull().is_none());
        sim.advance(1);
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_none(), "still one per spacing");
    }

    #[test]
    fn unlimited_rate_no_gate() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(0.0); // no gating
        q.push_arrivals([0, 0, 0]);
        sim.advance_to(1);
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some());
    }

    #[test]
    fn backlog_and_drain() {
        let (_, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([1, 2, 3]);
        assert_eq!(q.backlog(), 3);
        assert_eq!(q.drain(), 3);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn close_wakes_pullers() {
        let (_, clock) = sim_clock();
        let q = std::sync::Arc::new(RequestQueue::new(clock));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pull(50_000));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn blocking_pull_with_wallclock() {
        use bp_util::clock::wall_clock;
        let clock = wall_clock();
        let q = std::sync::Arc::new(RequestQueue::new(clock.clone()));
        let now = clock.now();
        q.push_arrivals([now + 20_000]); // 20ms in the future
        let got = q.pull(MICROS_PER_SEC).unwrap();
        let elapsed = clock.now() - now;
        assert!(elapsed >= 18_000, "dispatched too early: {elapsed}µs");
        assert_eq!(got.arrival, now + 20_000);
    }

    #[test]
    fn queue_wait_accumulates() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([100, 200]);
        assert_eq!(q.total_queue_wait_us(), 0);
        sim.advance_to(500);
        q.try_pull().unwrap(); // waited 400
        q.try_pull().unwrap(); // waited 300
        assert_eq!(q.total_queue_wait_us(), 700);
        assert!((q.mean_queue_wait_us() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn push_scheduled_pins_type_and_phase() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_scheduled(
            1_000,
            [
                ScheduledRequest { offset_us: 0, txn_type: 3, phase: 1 },
                ScheduledRequest { offset_us: 250, txn_type: 0, phase: 2 },
            ],
        );
        sim.advance_to(2_000);
        let a = q.try_pull().unwrap();
        assert_eq!((a.arrival, a.txn_type, a.phase), (1_000, 3, 1));
        let b = q.try_pull().unwrap();
        assert_eq!((b.arrival, b.txn_type, b.phase), (1_250, 0, 2));
        assert!(a.seq < b.seq);
    }

    /// Drain an overdue backlog for `dur_us` simulated µs at `tps` and
    /// return how many requests were dispatched.
    fn drain_at_rate(tps: f64, dur_us: u64) -> u64 {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(tps);
        let expected = (tps * dur_us as f64 / 1e6) as u64;
        q.push_arrivals((0..expected + expected / 10 + 10).map(|_| 0));
        let mut n = 0u64;
        for _ in 0..dur_us {
            sim.advance(1);
            while q.try_pull().is_some() {
                n += 1;
            }
        }
        n
    }

    #[test]
    fn dispatch_accuracy_300k() {
        // Regression: whole-µs spacing truncation made 300k tx/s dispatch
        // at ~333k (+11%). With nano spacing the error must be ≤1%, and
        // the never-exceed guarantee must hold.
        let target = 300_000.0;
        let secs = 0.5;
        let n = drain_at_rate(target, (secs * 1e6) as u64);
        let expected = target * secs;
        let err = (n as f64 - expected).abs() / expected;
        assert!(err <= 0.01, "300k: dispatched {n}, expected {expected}, err {err:.4}");
        assert!(n as f64 <= expected * 1.01, "never-exceed violated: {n}");
    }

    #[test]
    fn dispatch_accuracy_1_5m() {
        // Above 1M tx/s the old gate truncated spacing to 0µs — fully
        // unlimited. Sub-µs spacing must still track the target within 1%.
        let target = 1_500_000.0;
        let secs = 0.5;
        let n = drain_at_rate(target, (secs * 1e6) as u64);
        let expected = target * secs;
        let err = (n as f64 - expected).abs() / expected;
        assert!(err <= 0.01, "1.5M: dispatched {n}, expected {expected}, err {err:.4}");
        assert!(n as f64 <= expected * 1.01, "never-exceed violated: {n}");
    }

    #[test]
    fn rate_step_down_pushes_gate_back() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(10_000.0); // 100µs spacing
        q.push_arrivals((0..10).map(|_| 0));
        sim.advance_to(MICROS_PER_SEC);
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some(), "one catch-up credit");
        assert!(q.try_pull().is_none());
        // Step DOWN to 1000 tx/s: the gate must be re-anchored to the new
        // 1000µs spacing immediately, not after one stale 100µs slot.
        q.set_rate(1_000.0);
        sim.advance(100);
        assert!(q.try_pull().is_none(), "stale 100µs spacing leaked through");
        sim.advance(899);
        assert!(q.try_pull().is_none(), "gate must honor the new spacing fully");
        sim.advance(1); // 1000µs after the last dispatch
        assert!(q.try_pull().is_some());
    }

    #[test]
    fn rate_step_up_pulls_gate_forward() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(1_000.0); // 1000µs spacing
        q.push_arrivals((0..10).map(|_| 0));
        sim.advance_to(MICROS_PER_SEC);
        assert!(q.try_pull().is_some());
        assert!(q.try_pull().is_some(), "one catch-up credit");
        assert!(q.try_pull().is_none());
        // Step UP to 10k tx/s: next dispatch is 100µs after the last one,
        // not 1000µs.
        q.set_rate(10_000.0);
        sim.advance(99);
        assert!(q.try_pull().is_none());
        sim.advance(1);
        assert!(q.try_pull().is_some(), "faster rate applies immediately");
    }

    #[test]
    fn set_rate_before_first_dispatch_does_not_delay_it() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        // The executor configures the rate before the run starts; the very
        // first request must still dispatch at its arrival time.
        q.set_rate(10.0); // 100ms spacing
        q.set_rate(10.0);
        q.push_arrivals([1_000]);
        sim.advance_to(1_000);
        assert!(q.try_pull().is_some(), "first dispatch delayed by set_rate");
    }

    #[test]
    fn sequence_numbers_monotonic() {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals([0, 0]);
        q.push_arrivals([0]);
        sim.advance_to(10);
        let a = q.try_pull().unwrap();
        let b = q.try_pull().unwrap();
        let c = q.try_pull().unwrap();
        assert!(a.seq < b.seq && b.seq < c.seq);
    }
}
