//! `bp-core`: the OLTP-Bench testbed core — the paper's primary
//! contribution.
//!
//! Implements the client-side architecture of Fig. 1: the centralized
//! Workload Manager with precise [`rate`] control over a central
//! [`queue`], runtime [`mixture`] control, multi-phase scripts, worker
//! terminals ([`executor`]), statistics collection ([`stats`]), result
//! traces and the Trace Analyzer ([`trace`]), the runtime [`controller`]
//! behind the REST API, multi-tenant testbeds ([`tenant`]), `config.xml`
//! parsing ([`config`]), and a deterministic simulated path
//! ([`model`] + [`des`]) for shape experiments and the game.

pub mod config;
pub mod controller;
pub mod des;
pub mod executor;
pub mod mixture;
pub mod model;
pub mod queue;
pub mod rate;
pub mod recovery;
pub mod schedule;
pub mod slo;
pub mod stats;
pub mod tenant;
pub mod trace;
pub mod workload;

pub use bp_chaos::{Admission, BreakerConfig, BreakerState, CircuitBreaker, ResilienceConfig, RetryBudget};
pub use config::{ClusterMemberConfig, WorkloadConfig};
pub use controller::{ControlState, Controller};
pub use des::{simulate_script, SimRun, SimSample};
pub use executor::{start, start_with_source, RunConfig, RunHandle};
pub use mixture::{Mixture, MixtureError, MixturePreset};
pub use model::{CapacityModel, SimDbms, SimServer};
pub use queue::{Request, RequestQueue, ScheduledRequest};
pub use rate::{ArrivalDist, Phase, PhaseScript, Rate};
pub use recovery::{RecoveryConfig, RecoveryHandle};
pub use schedule::{ScheduleSource, ScriptSchedule, Window};
pub use slo::{
    Adjustment, ControlLaw, SloConfig, SloCore, SloDecision, SloHandle, SloObservation, SloTarget,
};
pub use stats::{
    RequestOutcome, Sample, StatsCollector, StatusSnapshot, TypeSummary, WindowSnapshot,
};
pub use tenant::{Tenant, Testbed};
pub use trace::{Trace, TraceAnalysis, TraceAnalyzer, TraceRecord, TrackingReport, TRACE_HEADER};
pub use workload::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
