//! Multi-tenancy (§2.2.3): run several workloads in parallel against the
//! same database instance, with isolated per-tenant statistics.

use std::sync::Arc;

use bp_sql::Connection;
use bp_storage::Database;
use bp_util::clock::SharedClock;
use bp_util::rng::Rng;

use crate::executor::{start, RunConfig, RunHandle};
use crate::workload::{LoadSummary, Workload};

/// One tenant slot.
pub struct Tenant {
    pub name: String,
    pub handle: RunHandle,
}

/// A testbed hosting multiple tenants on one DBMS instance.
pub struct Testbed {
    db: Arc<Database>,
    clock: SharedClock,
    tenants: Vec<Tenant>,
}

impl Testbed {
    pub fn new(db: Arc<Database>, clock: SharedClock) -> Testbed {
        Testbed { db, clock, tenants: Vec::new() }
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Load a workload's schema + data (once, before starting it).
    pub fn setup_workload(
        &self,
        workload: &dyn Workload,
        scale: f64,
        seed: u64,
    ) -> bp_sql::Result<LoadSummary> {
        let mut conn = Connection::open(&self.db);
        workload.setup(&mut conn, scale, &mut Rng::new(seed))
    }

    /// Start a workload as a new tenant; benchmarks can be added while
    /// others are running (the API's add-benchmark-on-the-fly).
    pub fn start_tenant(&mut self, name: &str, workload: Arc<dyn Workload>, cfg: RunConfig) -> usize {
        let handle = start(self.db.clone(), workload, self.clock.clone(), cfg);
        self.tenants.push(Tenant { name: name.to_string(), handle });
        self.tenants.len() - 1
    }

    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    pub fn tenant(&self, idx: usize) -> Option<&Tenant> {
        self.tenants.get(idx)
    }

    /// Stop every tenant and wait for their threads.
    pub fn stop_all(self) -> Vec<(String, crate::controller::Controller)> {
        self.tenants
            .into_iter()
            .map(|t| {
                let name = t.name;
                let controller = t.handle.stop_and_join();
                (name, controller)
            })
            .collect()
    }

    /// Wait for all tenants to finish their scripts.
    pub fn join_all(self) -> Vec<(String, crate::controller::Controller)> {
        self.tenants
            .into_iter()
            .map(|t| (t.name, t.handle.join()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{Phase, PhaseScript, Rate};
    use crate::workload::{BenchmarkClass, TransactionType, TxnOutcome};
    use bp_storage::{Personality, Value};
    use bp_util::clock::wall_clock;

    /// Minimal workload whose table name is parameterized, so two tenants
    /// can coexist (or collide, when given the same name).
    struct KvWorkload {
        table: &'static str,
    }

    impl Workload for KvWorkload {
        fn name(&self) -> &'static str {
            "kv"
        }
        fn class(&self) -> BenchmarkClass {
            BenchmarkClass::FeatureTesting
        }
        fn domain(&self) -> &'static str {
            "Testing"
        }
        fn transaction_types(&self) -> Vec<TransactionType> {
            vec![
                TransactionType::new("Get", 50.0, true),
                TransactionType::new("Put", 50.0, false),
            ]
        }
        fn create_schema(&self, conn: &mut Connection) -> bp_sql::Result<()> {
            conn.execute_batch(&format!(
                "CREATE TABLE {} (k INT PRIMARY KEY, v INT);",
                self.table
            ))
        }
        fn load(&self, conn: &mut Connection, _scale: f64, _rng: &mut Rng) -> bp_sql::Result<LoadSummary> {
            for i in 0..20 {
                conn.execute(
                    &format!("INSERT INTO {} VALUES (?, 0)", self.table),
                    &[Value::Int(i)],
                )?;
            }
            Ok(LoadSummary { tables: 1, rows: 20 })
        }
        fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> bp_sql::Result<TxnOutcome> {
            let k = Value::Int(rng.int_range(0, 19));
            conn.begin()?;
            let r = if txn_idx == 0 {
                conn.query(&format!("SELECT v FROM {} WHERE k = ?", self.table), &[k])
                    .map(|_| ())
            } else {
                conn.execute(
                    &format!("UPDATE {} SET v = v + 1 WHERE k = ?", self.table),
                    &[k],
                )
                .map(|_| ())
            };
            match r {
                Ok(()) => {
                    conn.commit()?;
                    Ok(TxnOutcome::Committed)
                }
                Err(e) => {
                    if conn.in_transaction() {
                        let _ = conn.rollback();
                    }
                    Err(e)
                }
            }
        }
    }

    #[test]
    fn two_tenants_run_in_parallel() {
        let db = Database::new(Personality::test());
        let mut bed = Testbed::new(db, wall_clock());
        let w1: Arc<dyn Workload> = Arc::new(KvWorkload { table: "kv_a" });
        let w2: Arc<dyn Workload> = Arc::new(KvWorkload { table: "kv_b" });
        bed.setup_workload(w1.as_ref(), 1.0, 1).unwrap();
        bed.setup_workload(w2.as_ref(), 1.0, 2).unwrap();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(150.0), 1.5)]),
            ..Default::default()
        };
        bed.start_tenant("alpha", w1, cfg.clone());
        bed.start_tenant("beta", w2, cfg);
        let results = bed.join_all();
        assert_eq!(results.len(), 2);
        for (name, c) in &results {
            let done = c.stats().total_completed();
            assert!(done > 100, "tenant {name} only completed {done}");
        }
    }

    #[test]
    fn tenant_added_on_the_fly() {
        let db = Database::new(Personality::test());
        let mut bed = Testbed::new(db, wall_clock());
        let w1: Arc<dyn Workload> = Arc::new(KvWorkload { table: "kv_a" });
        bed.setup_workload(w1.as_ref(), 1.0, 1).unwrap();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 2.0)]),
            ..Default::default()
        };
        bed.start_tenant("first", w1, cfg.clone());
        std::thread::sleep(std::time::Duration::from_millis(300));
        // Add the second benchmark while the first is running.
        let w2: Arc<dyn Workload> = Arc::new(KvWorkload { table: "kv_b" });
        bed.setup_workload(w2.as_ref(), 1.0, 2).unwrap();
        let cfg2 = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 1.0)]),
            ..Default::default()
        };
        bed.start_tenant("second", w2, cfg2);
        let results = bed.join_all();
        assert!(results.iter().all(|(_, c)| c.stats().total_completed() > 0));
    }
}
