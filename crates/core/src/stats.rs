//! Statistics collection: per-type latency histograms, per-second
//! throughput series, queue delay, and the instantaneous feedback the
//! control API exposes (§2.2.4).

use parking_lot::Mutex;

use bp_util::clock::{Micros, SharedClock, MICROS_PER_SEC};
use bp_util::histogram::Histogram;
use bp_util::timeseries::TimeSeries;

/// How a dispatched request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    Committed,
    /// Benchmark-logic abort (still a successfully processed request).
    UserAborted,
    /// Lock conflict / timeout; retries exhausted or disabled.
    Failed,
}

#[derive(Debug)]
struct PerType {
    name: String,
    latency: Histogram,
    completions: TimeSeries,
    committed: u64,
    user_aborted: u64,
    failed: u64,
    retries: u64,
}

#[derive(Debug)]
struct StatsInner {
    per_type: Vec<PerType>,
    /// All completions regardless of type.
    all_completions: TimeSeries,
    all_latency: Histogram,
    queue_delay: Histogram,
    requested: TimeSeries,
}

/// Thread-safe statistics collector shared by all workers of one workload.
pub struct StatsCollector {
    inner: Mutex<StatsInner>,
    clock: SharedClock,
    start: Micros,
}

/// One completed-request sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    pub txn_type: usize,
    /// When the request was scheduled to arrive.
    pub arrival: Micros,
    /// When a worker started executing it.
    pub start: Micros,
    /// When it finished.
    pub end: Micros,
    pub outcome: RequestOutcome,
    pub retries: u32,
}

/// A point-in-time view used by the control API and the game.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusSnapshot {
    /// Throughput over the last few complete seconds (tx/s).
    pub throughput: f64,
    /// Mean latency (µs) per transaction type over the whole run.
    pub latency_by_type: Vec<(String, f64)>,
    /// p95 latency across all types (µs).
    pub p95_latency_us: u64,
    pub committed: u64,
    pub user_aborted: u64,
    pub failed: u64,
    pub retries: u64,
    /// Seconds since the collector started.
    pub elapsed_s: f64,
}

impl StatsCollector {
    pub fn new(clock: SharedClock, type_names: &[&str]) -> StatsCollector {
        let inner = StatsInner {
            per_type: type_names
                .iter()
                .map(|n| PerType {
                    name: (*n).to_string(),
                    latency: Histogram::latency(),
                    completions: TimeSeries::per_second(),
                    committed: 0,
                    user_aborted: 0,
                    failed: 0,
                    retries: 0,
                })
                .collect(),
            all_completions: TimeSeries::per_second(),
            all_latency: Histogram::latency(),
            queue_delay: Histogram::latency(),
            requested: TimeSeries::per_second(),
        };
        let start = clock.now();
        StatsCollector { inner: Mutex::new(inner), clock, start }
    }

    /// Record a completed request.
    pub fn record(&self, s: Sample) {
        let mut inner = self.inner.lock();
        let latency = s.end.saturating_sub(s.start);
        let delay = s.start.saturating_sub(s.arrival);
        inner.all_latency.record(latency);
        inner.queue_delay.record(delay);
        inner.all_completions.record(s.end, latency);
        if let Some(pt) = inner.per_type.get_mut(s.txn_type) {
            pt.latency.record(latency);
            pt.completions.record(s.end, latency);
            pt.retries += s.retries as u64;
            match s.outcome {
                RequestOutcome::Committed => pt.committed += 1,
                RequestOutcome::UserAborted => pt.user_aborted += 1,
                RequestOutcome::Failed => pt.failed += 1,
            }
        }
    }

    /// Record that `n` requests were generated at time `t` (target side).
    pub fn record_requested(&self, t: Micros, n: usize) {
        let mut inner = self.inner.lock();
        for _ in 0..n {
            inner.requested.tick(t);
        }
    }

    /// Instantaneous status (sliding window of `window_s` complete seconds).
    pub fn status(&self, window_s: usize) -> StatusSnapshot {
        let inner = self.inner.lock();
        let now = self.clock.now();
        let throughput = inner.all_completions.recent_rate(now, window_s.max(1));
        let latency_by_type = inner
            .per_type
            .iter()
            .map(|pt| (pt.name.clone(), pt.latency.mean()))
            .collect();
        StatusSnapshot {
            throughput,
            latency_by_type,
            p95_latency_us: inner.all_latency.p95(),
            committed: inner.per_type.iter().map(|p| p.committed).sum(),
            user_aborted: inner.per_type.iter().map(|p| p.user_aborted).sum(),
            failed: inner.per_type.iter().map(|p| p.failed).sum(),
            retries: inner.per_type.iter().map(|p| p.retries).sum(),
            elapsed_s: (now - self.start) as f64 / MICROS_PER_SEC as f64,
        }
    }

    /// Per-second delivered throughput series.
    pub fn throughput_series(&self) -> Vec<f64> {
        self.inner.lock().all_completions.rates()
    }

    /// Per-second requested (target) series.
    pub fn requested_series(&self) -> Vec<f64> {
        self.inner.lock().requested.rates()
    }

    /// Mean latency per second (µs).
    pub fn latency_series(&self) -> Vec<f64> {
        self.inner.lock().all_completions.means()
    }

    /// Per-type summary: (name, count, mean µs, p95 µs, committed, aborted).
    pub fn per_type_summary(&self) -> Vec<TypeSummary> {
        let inner = self.inner.lock();
        inner
            .per_type
            .iter()
            .map(|pt| TypeSummary {
                name: pt.name.clone(),
                count: pt.latency.count(),
                mean_us: pt.latency.mean(),
                p95_us: pt.latency.p95(),
                committed: pt.committed,
                user_aborted: pt.user_aborted,
                failed: pt.failed,
            })
            .collect()
    }

    /// Queue-delay distribution snapshot (p50, p95, max in µs).
    pub fn queue_delay(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.queue_delay.p50(), inner.queue_delay.p95(), inner.queue_delay.max())
    }

    pub fn total_completed(&self) -> u64 {
        self.inner.lock().all_latency.count()
    }
}

/// Per-transaction-type roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeSummary {
    pub name: String,
    pub count: u64,
    pub mean_us: f64,
    pub p95_us: u64,
    pub committed: u64,
    pub user_aborted: u64,
    pub failed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_util::clock::sim_clock;

    fn sample(ty: usize, start: Micros, latency: Micros) -> Sample {
        Sample {
            txn_type: ty,
            arrival: start.saturating_sub(50),
            start,
            end: start + latency,
            outcome: RequestOutcome::Committed,
            retries: 0,
        }
    }

    #[test]
    fn record_and_status() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["read", "write"]);
        for i in 0..100u64 {
            c.record(sample(0, i * 10_000, 500));
            c.record(sample(1, i * 10_000, 1_500));
        }
        sim.advance_to(2 * MICROS_PER_SEC);
        let st = c.status(1);
        assert_eq!(st.committed, 200);
        assert_eq!(st.latency_by_type[0].0, "read");
        assert!((st.latency_by_type[0].1 - 500.0).abs() < 30.0);
        assert!((st.latency_by_type[1].1 - 1500.0).abs() < 80.0);
        // All 200 completions land in second 0 -> window of second 1 is 0.
        assert_eq!(c.throughput_series()[0], 200.0);
    }

    #[test]
    fn sliding_window_throughput() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        // 100 tx in second 0, 300 in second 1.
        for i in 0..100u64 {
            c.record(sample(0, i * 10_000, 100));
        }
        for i in 0..300u64 {
            c.record(sample(0, MICROS_PER_SEC + i * 3_000, 100));
        }
        sim.advance_to(2 * MICROS_PER_SEC);
        let st = c.status(2);
        assert!((st.throughput - 200.0).abs() < 1.0, "{}", st.throughput);
        let st1 = c.status(1);
        assert!((st1.throughput - 300.0).abs() < 1.0, "{}", st1.throughput);
    }

    #[test]
    fn outcome_counters() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        let mut s = sample(0, 0, 100);
        s.outcome = RequestOutcome::UserAborted;
        c.record(s);
        let mut s = sample(0, 0, 100);
        s.outcome = RequestOutcome::Failed;
        s.retries = 3;
        c.record(s);
        let st = c.status(1);
        assert_eq!(st.user_aborted, 1);
        assert_eq!(st.failed, 1);
        assert_eq!(st.retries, 3);
        assert_eq!(st.committed, 0);
    }

    #[test]
    fn queue_delay_tracked() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        c.record(Sample {
            txn_type: 0,
            arrival: 0,
            start: 5_000,
            end: 6_000,
            outcome: RequestOutcome::Committed,
            retries: 0,
        });
        let (p50, _, max) = c.queue_delay();
        assert!(p50 >= 4_800 && max >= 4_800);
    }

    #[test]
    fn per_type_summary() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["a", "b"]);
        c.record(sample(0, 0, 1_000));
        c.record(sample(0, 0, 3_000));
        let sum = c.per_type_summary();
        assert_eq!(sum[0].count, 2);
        assert_eq!(sum[0].mean_us, 2_000.0);
        assert_eq!(sum[1].count, 0);
    }

    #[test]
    fn requested_series() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        c.record_requested(0, 50);
        c.record_requested(MICROS_PER_SEC, 70);
        assert_eq!(c.requested_series(), vec![50.0, 70.0]);
    }
}
