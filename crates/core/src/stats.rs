//! Statistics collection: per-type latency histograms, per-second
//! throughput series, queue delay, and the instantaneous feedback the
//! control API exposes (§2.2.4).
//!
//! The completion path is the hottest client-side code in the testbed —
//! every finished transaction calls [`StatsCollector::record`] — so the
//! collector is sharded: each worker thread records into its own
//! cache-line-padded shard guarded by a lock no other recorder touches.
//! Readers (the controller feedback loop, the monitor, the control API)
//! merge the shards on demand; reads are orders of magnitude rarer than
//! writes, so the merge cost sits on the cold path where it belongs.

use bp_util::clock::{Micros, SharedClock, MICROS_PER_SEC};
use bp_util::histogram::{Histogram, WindowedHistogram};
use bp_util::sync::{thread_slot, CachePadded, Mutex};
use bp_util::timeseries::TimeSeries;

/// Seconds of per-second latency history each shard keeps for sliding
/// windows. Two minutes comfortably covers any control-loop window while
/// bounding memory per shard.
const WINDOW_RING_S: usize = 120;

/// How a dispatched request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    Committed,
    /// Benchmark-logic abort (still a successfully processed request).
    UserAborted,
    /// Lock conflict / timeout; retries exhausted or disabled.
    Failed,
    /// Fast-failed by the admission controller without executing.
    /// Counted in its own bucket: never in throughput, never as an error.
    Shed,
}

#[derive(Debug, Clone)]
struct PerType {
    latency: Histogram,
    completions: TimeSeries,
    committed: u64,
    user_aborted: u64,
    failed: u64,
    retries: u64,
    shed: u64,
}

impl PerType {
    fn new() -> PerType {
        PerType {
            latency: Histogram::latency(),
            completions: TimeSeries::per_second(),
            committed: 0,
            user_aborted: 0,
            failed: 0,
            retries: 0,
            shed: 0,
        }
    }

    fn merge(&mut self, other: &PerType) {
        self.latency.merge(&other.latency);
        self.completions.merge(&other.completions);
        self.committed += other.committed;
        self.user_aborted += other.user_aborted;
        self.failed += other.failed;
        self.retries += other.retries;
        self.shed += other.shed;
    }
}

/// One worker's private slice of the statistics.
#[derive(Debug)]
struct Shard {
    per_type: Vec<PerType>,
    /// All completions regardless of type.
    all_completions: TimeSeries,
    all_latency: Histogram,
    queue_delay: Histogram,
    requested: TimeSeries,
    /// Per-second latency ring for sliding-window percentiles. Recorded
    /// under the same shard lock as everything else: no new locking on
    /// the hot path.
    windowed: WindowedHistogram,
}

impl Shard {
    fn new(num_types: usize) -> Shard {
        Shard {
            per_type: (0..num_types).map(|_| PerType::new()).collect(),
            all_completions: TimeSeries::per_second(),
            all_latency: Histogram::latency(),
            queue_delay: Histogram::latency(),
            requested: TimeSeries::per_second(),
            windowed: WindowedHistogram::new(WINDOW_RING_S),
        }
    }

    /// Cumulative merge. The windowed ring is deliberately excluded:
    /// window views are folded across shards by
    /// [`StatsCollector::window_histogram`], which merges each shard's
    /// ring slice for one specific window instead of the whole ring.
    fn merge(&mut self, other: &Shard) {
        for (pt, o) in self.per_type.iter_mut().zip(&other.per_type) {
            pt.merge(o);
        }
        self.all_completions.merge(&other.all_completions);
        self.all_latency.merge(&other.all_latency);
        self.queue_delay.merge(&other.queue_delay);
        self.requested.merge(&other.requested);
    }
}

/// Default shard count; power of two so the thread-slot modulo is cheap.
/// With typical worker counts (≤ a few dozen) collisions are rare, and a
/// collision only means two workers share one (still uncontended-by-others)
/// lock — never a correctness issue.
const DEFAULT_SHARDS: usize = 16;

/// Thread-safe statistics collector shared by all workers of one workload.
///
/// Writes go to a per-thread shard; no lock in [`StatsCollector::record`]
/// is shared across recording workers (up to shard-count collisions).
/// Readers merge all shards on demand.
pub struct StatsCollector {
    shards: Vec<CachePadded<Mutex<Shard>>>,
    type_names: Vec<String>,
    clock: SharedClock,
    start: Micros,
    /// Span recorder attached by the executor so client latency histograms
    /// can carry trace-id exemplars on scrape (cold path only).
    span_source: Mutex<Option<std::sync::Arc<bp_obs::SpanRecorder>>>,
}

/// One completed-request sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    pub txn_type: usize,
    /// When the request was scheduled to arrive.
    pub arrival: Micros,
    /// When a worker started executing it.
    pub start: Micros,
    /// When it finished.
    pub end: Micros,
    pub outcome: RequestOutcome,
    pub retries: u32,
}

/// A point-in-time view used by the control API and the game.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusSnapshot {
    /// Throughput over the last few complete seconds (tx/s).
    pub throughput: f64,
    /// Mean latency (µs) per transaction type over the whole run.
    pub latency_by_type: Vec<(String, f64)>,
    /// p95 latency across all types (µs).
    pub p95_latency_us: u64,
    pub committed: u64,
    pub user_aborted: u64,
    pub failed: u64,
    pub retries: u64,
    /// Requests shed by the admission controller (excluded from
    /// throughput and latency).
    pub shed: u64,
    /// Seconds since the collector started.
    pub elapsed_s: f64,
}

impl StatsCollector {
    pub fn new(clock: SharedClock, type_names: &[&str]) -> StatsCollector {
        StatsCollector::with_shards(clock, type_names, DEFAULT_SHARDS)
    }

    /// Collector with an explicit shard count (1 = the old single-lock
    /// layout; used by the shard-equivalence regression tests).
    pub fn with_shards(
        clock: SharedClock,
        type_names: &[&str],
        shards: usize,
    ) -> StatsCollector {
        let shards = shards.max(1);
        let num_types = type_names.len();
        StatsCollector {
            shards: (0..shards)
                .map(|_| CachePadded::new(Mutex::new(Shard::new(num_types))))
                .collect(),
            type_names: type_names.iter().map(|n| (*n).to_string()).collect(),
            start: clock.now(),
            clock,
            span_source: Mutex::new(None),
        }
    }

    /// Attach the run's span recorder; scrapes then decorate
    /// `bp_client_latency_us` buckets with recent trace-id exemplars.
    pub fn set_span_source(&self, spans: std::sync::Arc<bp_obs::SpanRecorder>) {
        *self.span_source.lock() = Some(spans);
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The calling thread's shard. Thread slots are handed out once per
    /// thread process-wide, so a worker always lands on the same shard of a
    /// given collector.
    #[inline]
    fn my_shard(&self) -> &Mutex<Shard> {
        &self.shards[thread_slot() % self.shards.len()]
    }

    /// Fold every shard into one merged view (cold path).
    fn merged(&self) -> Shard {
        let mut acc = Shard::new(self.type_names.len());
        for shard in &self.shards {
            acc.merge(&shard.lock());
        }
        acc
    }

    /// Record a completed request. Touches only the calling worker's shard.
    pub fn record(&self, s: Sample) {
        let latency = s.end.saturating_sub(s.start);
        let delay = s.start.saturating_sub(s.arrival);
        let mut shard = self.my_shard().lock();
        if s.outcome == RequestOutcome::Shed {
            // Shed requests never executed: they contribute to no latency
            // histogram and no completion (throughput) series — only their
            // own counter. Graceful degradation must not be reported as
            // either work done or work failed.
            if let Some(pt) = shard.per_type.get_mut(s.txn_type) {
                pt.shed += 1;
            }
            return;
        }
        shard.all_latency.record(latency);
        shard.windowed.record(s.end, latency);
        shard.queue_delay.record(delay);
        shard.all_completions.record(s.end, latency);
        if let Some(pt) = shard.per_type.get_mut(s.txn_type) {
            pt.latency.record(latency);
            pt.completions.record(s.end, latency);
            pt.retries += s.retries as u64;
            match s.outcome {
                RequestOutcome::Committed => pt.committed += 1,
                RequestOutcome::UserAborted => pt.user_aborted += 1,
                RequestOutcome::Failed => pt.failed += 1,
                RequestOutcome::Shed => unreachable!("shed handled above"),
            }
        }
    }

    /// Record that `n` requests were generated at time `t` (target side).
    pub fn record_requested(&self, t: Micros, n: usize) {
        let mut shard = self.my_shard().lock();
        for _ in 0..n {
            shard.requested.tick(t);
        }
    }

    /// Instantaneous status (sliding window of `window_s` complete seconds).
    pub fn status(&self, window_s: usize) -> StatusSnapshot {
        let merged = self.merged();
        let now = self.clock.now();
        let throughput = merged.all_completions.recent_rate(now, window_s.max(1));
        let latency_by_type = self
            .type_names
            .iter()
            .zip(&merged.per_type)
            .map(|(name, pt)| (name.clone(), pt.latency.mean()))
            .collect();
        StatusSnapshot {
            throughput,
            latency_by_type,
            p95_latency_us: merged.all_latency.p95(),
            committed: merged.per_type.iter().map(|p| p.committed).sum(),
            user_aborted: merged.per_type.iter().map(|p| p.user_aborted).sum(),
            failed: merged.per_type.iter().map(|p| p.failed).sum(),
            retries: merged.per_type.iter().map(|p| p.retries).sum(),
            shed: merged.per_type.iter().map(|p| p.shed).sum(),
            elapsed_s: (now - self.start) as f64 / MICROS_PER_SEC as f64,
        }
    }

    /// Per-second delivered throughput series.
    pub fn throughput_series(&self) -> Vec<f64> {
        self.merged().all_completions.rates()
    }

    /// Per-second requested (target) series.
    pub fn requested_series(&self) -> Vec<f64> {
        self.merged().requested.rates()
    }

    /// Mean latency per second (µs).
    pub fn latency_series(&self) -> Vec<f64> {
        self.merged().all_completions.means()
    }

    /// Per-type summary: (name, count, mean µs, p95 µs, committed, aborted).
    pub fn per_type_summary(&self) -> Vec<TypeSummary> {
        let merged = self.merged();
        self.type_names
            .iter()
            .zip(&merged.per_type)
            .map(|(name, pt)| TypeSummary {
                name: name.clone(),
                count: pt.latency.count(),
                mean_us: pt.latency.mean(),
                p95_us: pt.latency.p95(),
                committed: pt.committed,
                user_aborted: pt.user_aborted,
                failed: pt.failed,
            })
            .collect()
    }

    /// Queue-delay distribution snapshot (p50, p95, max in µs).
    pub fn queue_delay(&self) -> (u64, u64, u64) {
        let merged = self.merged();
        (merged.queue_delay.p50(), merged.queue_delay.p95(), merged.queue_delay.max())
    }

    pub fn total_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().all_latency.count()).sum()
    }

    /// The clock this collector stamps and windows against.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Latency histogram over the last `window_s` seconds (including the
    /// current partial second), folded across all shards on demand.
    pub fn window_histogram(&self, window_s: usize) -> Histogram {
        let now = self.clock.now();
        let mut acc = Histogram::latency();
        for shard in &self.shards {
            acc.merge(&shard.lock().windowed.window(now, window_s));
        }
        acc
    }

    /// Sliding-window view for feedback control: latency percentiles over
    /// the window plus throughput over the same horizon.
    pub fn window_snapshot(&self, window_s: usize) -> WindowSnapshot {
        let hist = self.window_histogram(window_s);
        let now = self.clock.now();
        let throughput = self.merged().all_completions.recent_rate(now, window_s.max(1));
        WindowSnapshot {
            count: hist.count(),
            mean_us: hist.mean(),
            p50_us: hist.p50(),
            p95_us: hist.p95(),
            p99_us: hist.p99(),
            throughput,
        }
    }
}

/// Sliding-window latency/throughput snapshot (the SLO controller's
/// sensor reading).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Completions inside the window.
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Throughput over the same window (tx/s, complete seconds).
    pub throughput: f64,
}

impl bp_obs::MetricsSource for StatsCollector {
    fn collect(&self, buf: &mut bp_obs::MetricsBuf) {
        let merged = self.merged();
        // Recent retained spans, oldest first, for per-type latency
        // exemplars (client latency = dispatch → end, matching `Sample`).
        let recent_spans = self
            .span_source
            .lock()
            .as_ref()
            .map(|s| s.recent(256))
            .unwrap_or_default();
        for (idx, (name, pt)) in self.type_names.iter().zip(&merged.per_type).enumerate() {
            let labels: [(&str, &str); 1] = [("type", name)];
            buf.counter(
                "bp_client_committed_total",
                "Requests committed, by transaction type",
                &labels,
                pt.committed as f64,
            );
            buf.counter(
                "bp_client_user_aborted_total",
                "Requests ending in a benchmark-logic abort, by transaction type",
                &labels,
                pt.user_aborted as f64,
            );
            buf.counter(
                "bp_client_failed_total",
                "Requests failed after exhausting retries, by transaction type",
                &labels,
                pt.failed as f64,
            );
            buf.counter(
                "bp_client_retries_total",
                "Retries of retryable aborts, by transaction type",
                &labels,
                pt.retries as f64,
            );
            buf.counter(
                "bp_client_shed_total",
                "Requests shed by the admission controller, by transaction type",
                &labels,
                pt.shed as f64,
            );
            let exemplars: Vec<(u64, String)> = recent_spans
                .iter()
                .filter(|s| s.trace_id != 0 && s.txn_type as usize == idx)
                .map(|s| (s.end_us.saturating_sub(s.dequeued_us), bp_obs::format_trace_id(s.trace_id)))
                .collect();
            buf.histogram_with_exemplars(
                "bp_client_latency_us",
                "Client-observed execution latency in microseconds",
                &labels,
                &pt.latency,
                &exemplars,
            );
        }
        buf.histogram(
            "bp_client_queue_delay_us",
            "Scheduled arrival to dispatch delay in microseconds",
            &[],
            &merged.queue_delay,
        );
        let now = self.clock.now();
        buf.gauge(
            "bp_client_throughput_tps",
            "Delivered throughput over the last 3 complete seconds",
            &[],
            merged.all_completions.recent_rate(now, 3),
        );
    }
}

/// Per-transaction-type roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeSummary {
    pub name: String,
    pub count: u64,
    pub mean_us: f64,
    pub p95_us: u64,
    pub committed: u64,
    pub user_aborted: u64,
    pub failed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_util::clock::sim_clock;

    fn sample(ty: usize, start: Micros, latency: Micros) -> Sample {
        Sample {
            txn_type: ty,
            arrival: start.saturating_sub(50),
            start,
            end: start + latency,
            outcome: RequestOutcome::Committed,
            retries: 0,
        }
    }

    #[test]
    fn record_and_status() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["read", "write"]);
        for i in 0..100u64 {
            c.record(sample(0, i * 10_000, 500));
            c.record(sample(1, i * 10_000, 1_500));
        }
        sim.advance_to(2 * MICROS_PER_SEC);
        let st = c.status(1);
        assert_eq!(st.committed, 200);
        assert_eq!(st.latency_by_type[0].0, "read");
        assert!((st.latency_by_type[0].1 - 500.0).abs() < 30.0);
        assert!((st.latency_by_type[1].1 - 1500.0).abs() < 80.0);
        // All 200 completions land in second 0 -> window of second 1 is 0.
        assert_eq!(c.throughput_series()[0], 200.0);
    }

    #[test]
    fn sliding_window_throughput() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        // 100 tx in second 0, 300 in second 1.
        for i in 0..100u64 {
            c.record(sample(0, i * 10_000, 100));
        }
        for i in 0..300u64 {
            c.record(sample(0, MICROS_PER_SEC + i * 3_000, 100));
        }
        sim.advance_to(2 * MICROS_PER_SEC);
        let st = c.status(2);
        assert!((st.throughput - 200.0).abs() < 1.0, "{}", st.throughput);
        let st1 = c.status(1);
        assert!((st1.throughput - 300.0).abs() < 1.0, "{}", st1.throughput);
    }

    #[test]
    fn outcome_counters() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        let mut s = sample(0, 0, 100);
        s.outcome = RequestOutcome::UserAborted;
        c.record(s);
        let mut s = sample(0, 0, 100);
        s.outcome = RequestOutcome::Failed;
        s.retries = 3;
        c.record(s);
        let st = c.status(1);
        assert_eq!(st.user_aborted, 1);
        assert_eq!(st.failed, 1);
        assert_eq!(st.retries, 3);
        assert_eq!(st.committed, 0);
    }

    #[test]
    fn retrying_txn_counts_once_in_throughput_n_in_retries() {
        // Regression pin (satellite 2): a transaction that retries N times
        // and then succeeds is ONE unit of throughput and N units of retry.
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        let mut s = sample(0, 0, 2_000);
        s.retries = 4;
        c.record(s);
        sim.advance_to(MICROS_PER_SEC);
        assert_eq!(c.total_completed(), 1, "one completion, not 1 + retries");
        let st = c.status(1);
        assert_eq!(st.committed, 1);
        assert_eq!(st.retries, 4);
        assert_eq!(c.per_type_summary()[0].count, 1, "latency recorded once");
        assert_eq!(c.throughput_series().iter().sum::<f64>() as u64, 1);
    }

    #[test]
    fn shed_excluded_from_throughput_and_latency() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        c.record(sample(0, 0, 100));
        let mut s = sample(0, 0, 100);
        s.outcome = RequestOutcome::Shed;
        c.record(s);
        c.record(s);
        sim.advance_to(MICROS_PER_SEC);
        let st = c.status(1);
        assert_eq!(st.shed, 2);
        assert_eq!(st.committed, 1);
        assert_eq!(st.failed, 0, "shed is not an error");
        assert_eq!(c.total_completed(), 1, "shed is not throughput");
        assert_eq!(c.per_type_summary()[0].count, 1, "shed has no latency");
    }

    #[test]
    fn queue_delay_tracked() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        c.record(Sample {
            txn_type: 0,
            arrival: 0,
            start: 5_000,
            end: 6_000,
            outcome: RequestOutcome::Committed,
            retries: 0,
        });
        let (p50, _, max) = c.queue_delay();
        assert!(p50 >= 4_800 && max >= 4_800);
    }

    #[test]
    fn per_type_summary() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["a", "b"]);
        c.record(sample(0, 0, 1_000));
        c.record(sample(0, 0, 3_000));
        let sum = c.per_type_summary();
        assert_eq!(sum[0].count, 2);
        assert_eq!(sum[0].mean_us, 2_000.0);
        assert_eq!(sum[1].count, 0);
    }

    #[test]
    fn requested_series() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        c.record_requested(0, 50);
        c.record_requested(MICROS_PER_SEC, 70);
        assert_eq!(c.requested_series(), vec![50.0, 70.0]);
    }

    #[test]
    fn multithreaded_records_all_merge() {
        let (sim, clock) = sim_clock();
        let c = std::sync::Arc::new(StatsCollector::new(clock, &["a", "b"]));
        let threads = 8u64;
        let per_thread = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        c.record(sample((t % 2) as usize, i * 1_000, 200 + t * 10));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        sim.advance_to(MICROS_PER_SEC);
        assert_eq!(c.total_completed(), threads * per_thread);
        let st = c.status(1);
        assert_eq!(st.committed, threads * per_thread);
        let sum = c.per_type_summary();
        assert_eq!(sum[0].count + sum[1].count, threads * per_thread);
    }

    #[test]
    fn window_snapshot_tracks_recent_latency_only() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        // Second 0: slow (10ms). Seconds 5-6: fast (1ms).
        for i in 0..50u64 {
            c.record(sample(0, i * 10_000, 10_000));
        }
        for i in 0..100u64 {
            c.record(sample(0, 5 * MICROS_PER_SEC + i * 15_000, 1_000));
        }
        sim.advance_to(7 * MICROS_PER_SEC);
        // A 3s window sees only the fast phase.
        let w = c.window_snapshot(3);
        assert_eq!(w.count, 100);
        assert!(w.p99_us < 1_100, "p99 {} should reflect the fast phase", w.p99_us);
        // A huge window sees everything, matching the cumulative histogram.
        let all = c.window_snapshot(1_000);
        assert_eq!(all.count, 150);
        assert!(all.p99_us > 9_000, "cumulative p99 {} includes the slow phase", all.p99_us);
    }

    #[test]
    fn window_histogram_huge_equals_cumulative() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        for i in 0..2_000u64 {
            c.record(sample(0, i * 5_000, 100 + (i * 7) % 3_000));
        }
        sim.advance_to(11 * MICROS_PER_SEC);
        let windowed = c.window_histogram(usize::MAX);
        let st = c.status(1);
        assert_eq!(windowed.count(), st.committed);
        assert_eq!(windowed.p95(), c.per_type_summary()[0].p95_us);
    }

    #[test]
    fn window_empty_after_quiet_period() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        c.record(sample(0, 0, 500));
        sim.advance_to(30 * MICROS_PER_SEC);
        let w = c.window_snapshot(5);
        assert_eq!(w.count, 0);
        assert_eq!(w.p99_us, 0);
        assert_eq!(w.mean_us, 0.0);
    }

    #[test]
    fn window_shed_excluded() {
        let (sim, clock) = sim_clock();
        let c = StatsCollector::new(clock, &["t"]);
        c.record(sample(0, 0, 100));
        let mut s = sample(0, 0, 100);
        s.outcome = RequestOutcome::Shed;
        c.record(s);
        sim.advance_to(MICROS_PER_SEC);
        assert_eq!(c.window_snapshot(10).count, 1, "shed never enters the window");
    }

    #[test]
    fn single_shard_collector_still_works() {
        let (_, clock) = sim_clock();
        let c = StatsCollector::with_shards(clock, &["t"], 1);
        assert_eq!(c.shard_count(), 1);
        c.record(sample(0, 0, 100));
        assert_eq!(c.total_completed(), 1);
    }
}
