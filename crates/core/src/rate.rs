//! Rate control (§2.2.1): target rates, arrival processes and phases.
//!
//! Each second the Workload Manager adds exactly the configured number of
//! requests to the central queue, interleaved with uniform or exponential
//! inter-arrival times. Unlimited (open-loop) execution enqueues at a large
//! configurable constant; Disabled stops request generation entirely.

use std::fmt;

use bp_util::clock::{Micros, MICROS_PER_SEC};
use bp_util::rng::Rng;

/// The target request rate of a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rate {
    /// Open loop: workers are kept saturated (a large constant arrival rate).
    Unlimited,
    /// Throttled to this many transactions per second.
    Limited(f64),
    /// No requests are generated.
    Disabled,
}

impl Rate {
    /// The arrival rate used for queue generation, in requests/second.
    /// Open-loop execution uses a large configurable constant (§2.2.1).
    pub fn arrivals_per_second(&self, unlimited_rate: f64) -> f64 {
        match self {
            Rate::Unlimited => unlimited_rate,
            Rate::Limited(tps) => tps.max(0.0),
            Rate::Disabled => 0.0,
        }
    }

    pub fn parse(text: &str) -> Option<Rate> {
        let t = text.trim().to_ascii_lowercase();
        match t.as_str() {
            "unlimited" | "open" => Some(Rate::Unlimited),
            "disabled" | "off" => Some(Rate::Disabled),
            _ => t.parse::<f64>().ok().filter(|v| *v >= 0.0).map(Rate::Limited),
        }
    }
}

/// Inverse of [`Rate::parse`]: `Rate::parse(&r.to_string()) == Some(r)`.
/// `f64` `Display` emits the shortest string that reads back exactly, so
/// `Limited` round-trips bit-for-bit — the artifact header relies on this.
impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rate::Unlimited => f.write_str("unlimited"),
            Rate::Disabled => f.write_str("disabled"),
            Rate::Limited(tps) => write!(f, "{tps}"),
        }
    }
}

/// How arrivals are spread within each one-second window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalDist {
    /// Evenly spaced.
    #[default]
    Uniform,
    /// Exponential (Poisson process) inter-arrival times.
    Exponential,
}

impl ArrivalDist {
    pub fn parse(text: &str) -> Option<ArrivalDist> {
        match text.trim().to_ascii_lowercase().as_str() {
            "uniform" | "regular" => Some(ArrivalDist::Uniform),
            "exponential" | "poisson" => Some(ArrivalDist::Exponential),
            _ => None,
        }
    }

    /// Generate the arrival offsets (µs within the second) for `n` requests.
    ///
    /// Uniform: exact spacing. Exponential: exponential gaps scaled to fill
    /// the second, preserving the exact per-second count (OLTP-Bench adds
    /// "the exact number of requests configured" each second).
    pub fn offsets(&self, n: usize, rng: &mut Rng) -> Vec<Micros> {
        if n == 0 {
            return Vec::new();
        }
        match self {
            ArrivalDist::Uniform => {
                let spacing = MICROS_PER_SEC as f64 / n as f64;
                (0..n).map(|i| (i as f64 * spacing) as Micros).collect()
            }
            ArrivalDist::Exponential => {
                // n exponential gaps, normalized so the n arrivals land
                // within the second.
                let mut gaps: Vec<f64> = (0..n).map(|_| rng.exponential(1.0)).collect();
                let total: f64 = gaps.iter().sum::<f64>().max(f64::MIN_POSITIVE);
                let mut acc = 0.0;
                for g in &mut gaps {
                    acc += *g;
                    *g = acc / total;
                }
                gaps.iter()
                    .map(|f| ((f * MICROS_PER_SEC as f64) as Micros).min(MICROS_PER_SEC - 1))
                    .collect()
            }
        }
    }
}

/// Inverse of [`ArrivalDist::parse`].
impl fmt::Display for ArrivalDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArrivalDist::Uniform => "uniform",
            ArrivalDist::Exponential => "exponential",
        })
    }
}

/// One workload phase: target rate, mixture weights, duration (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    pub rate: Rate,
    pub arrival: ArrivalDist,
    /// Mixture weights for this phase; `None` keeps the previous mixture.
    pub weights: Option<Vec<f64>>,
    /// Duration in seconds.
    pub duration_s: f64,
    /// Optional worker think time after each transaction (µs).
    pub think_time_us: Micros,
}

impl Phase {
    pub fn new(rate: Rate, duration_s: f64) -> Phase {
        Phase { rate, arrival: ArrivalDist::Uniform, weights: None, duration_s, think_time_us: 0 }
    }

    pub fn with_weights(mut self, weights: Vec<f64>) -> Phase {
        self.weights = Some(weights);
        self
    }

    pub fn with_arrival(mut self, arrival: ArrivalDist) -> Phase {
        self.arrival = arrival;
        self
    }

    pub fn with_think_time(mut self, micros: Micros) -> Phase {
        self.think_time_us = micros;
        self
    }

    pub fn duration_us(&self) -> Micros {
        (self.duration_s * MICROS_PER_SEC as f64) as Micros
    }

    /// Inverse of the `Display` impl: parses `key=value` tokens
    /// (`rate=… arrival=… duration_s=… think_us=… [weights=a,b,…]`) in any
    /// order. Returns `None` on unknown keys, bad values, or missing fields.
    pub fn parse(text: &str) -> Option<Phase> {
        let mut rate = None;
        let mut arrival = None;
        let mut duration_s = None;
        let mut think_time_us = None;
        let mut weights = None;
        for token in text.split_whitespace() {
            let (key, value) = token.split_once('=')?;
            match key {
                "rate" => rate = Some(Rate::parse(value)?),
                "arrival" => arrival = Some(ArrivalDist::parse(value)?),
                "duration_s" => {
                    duration_s = Some(value.parse::<f64>().ok().filter(|d| *d >= 0.0)?)
                }
                "think_us" => think_time_us = Some(value.parse::<Micros>().ok()?),
                "weights" => {
                    let ws: Option<Vec<f64>> =
                        value.split(',').map(|w| w.parse::<f64>().ok()).collect();
                    weights = Some(ws?);
                }
                _ => return None,
            }
        }
        Some(Phase {
            rate: rate?,
            arrival: arrival?,
            weights,
            duration_s: duration_s?,
            think_time_us: think_time_us?,
        })
    }
}

/// One line of `key=value` tokens; exact inverse of [`Phase::parse`]. All
/// floats use `f64` `Display` (shortest exact representation), so the
/// round-trip is lossless — this is the artifact-header encoding.
impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rate={} arrival={} duration_s={} think_us={}",
            self.rate, self.arrival, self.duration_s, self.think_time_us
        )?;
        if let Some(ws) = &self.weights {
            f.write_str(" weights=")?;
            for (i, w) in ws.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{w}")?;
            }
        }
        Ok(())
    }
}

/// A predefined multi-phase workload script.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseScript {
    pub phases: Vec<Phase>,
    /// Loop back to the first phase when the script ends.
    pub repeat: bool,
}

impl PhaseScript {
    pub fn new(phases: Vec<Phase>) -> PhaseScript {
        PhaseScript { phases, repeat: false }
    }

    pub fn repeating(phases: Vec<Phase>) -> PhaseScript {
        PhaseScript { phases, repeat: true }
    }

    /// A single open-ended phase.
    pub fn constant(rate: Rate, duration_s: f64) -> PhaseScript {
        PhaseScript::new(vec![Phase::new(rate, duration_s)])
    }

    /// Total scripted duration (one pass), in µs.
    pub fn total_duration_us(&self) -> Micros {
        self.phases.iter().map(Phase::duration_us).sum()
    }

    /// Which phase is active at time `t` since the run started.
    /// Returns `None` after the script ends (unless repeating).
    pub fn phase_at(&self, t: Micros) -> Option<(usize, &Phase)> {
        if self.phases.is_empty() {
            return None;
        }
        let total = self.total_duration_us();
        if total == 0 {
            return None;
        }
        let t = if self.repeat { t % total } else { t };
        let mut acc = 0;
        for (i, p) in self.phases.iter().enumerate() {
            acc += p.duration_us();
            if t < acc {
                return Some((i, p));
            }
        }
        None
    }

    /// The target rate series sampled per second over the script (used by
    /// the trace analyzer to compute tracking error).
    pub fn target_series(&self, seconds: usize, unlimited_rate: f64) -> Vec<f64> {
        (0..seconds)
            .map(|s| {
                self.phase_at(s as Micros * MICROS_PER_SEC + MICROS_PER_SEC / 2)
                    .map(|(_, p)| p.rate.arrivals_per_second(unlimited_rate))
                    .unwrap_or(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_parse() {
        assert_eq!(Rate::parse("unlimited"), Some(Rate::Unlimited));
        assert_eq!(Rate::parse("500"), Some(Rate::Limited(500.0)));
        assert_eq!(Rate::parse(" 12.5 "), Some(Rate::Limited(12.5)));
        assert_eq!(Rate::parse("disabled"), Some(Rate::Disabled));
        assert_eq!(Rate::parse("-5"), None);
        assert_eq!(Rate::parse("abc"), None);
    }

    #[test]
    fn arrivals_per_second() {
        assert_eq!(Rate::Limited(100.0).arrivals_per_second(10_000.0), 100.0);
        assert_eq!(Rate::Unlimited.arrivals_per_second(10_000.0), 10_000.0);
        assert_eq!(Rate::Disabled.arrivals_per_second(10_000.0), 0.0);
    }

    #[test]
    fn uniform_offsets_evenly_spaced() {
        let mut rng = Rng::new(1);
        let offs = ArrivalDist::Uniform.offsets(4, &mut rng);
        assert_eq!(offs, vec![0, 250_000, 500_000, 750_000]);
    }

    #[test]
    fn exponential_offsets_sorted_within_second() {
        let mut rng = Rng::new(2);
        let offs = ArrivalDist::Exponential.offsets(100, &mut rng);
        assert_eq!(offs.len(), 100);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        assert!(*offs.last().unwrap() < MICROS_PER_SEC);
    }

    #[test]
    fn exponential_offsets_are_irregular() {
        let mut rng = Rng::new(3);
        let offs = ArrivalDist::Exponential.offsets(50, &mut rng);
        let gaps: Vec<i64> = offs.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        let mean = gaps.iter().sum::<i64>() as f64 / gaps.len() as f64;
        let var = gaps.iter().map(|g| (*g as f64 - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        // Uniform spacing would have zero variance.
        assert!(var.sqrt() > mean * 0.3, "cv {}", var.sqrt() / mean);
    }

    #[test]
    fn zero_arrivals() {
        let mut rng = Rng::new(4);
        assert!(ArrivalDist::Uniform.offsets(0, &mut rng).is_empty());
        assert!(ArrivalDist::Exponential.offsets(0, &mut rng).is_empty());
    }

    #[test]
    fn phase_schedule_lookup() {
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(100.0), 2.0),
            Phase::new(Rate::Limited(300.0), 3.0),
        ]);
        assert_eq!(script.phase_at(0).unwrap().0, 0);
        assert_eq!(script.phase_at(1_999_999).unwrap().0, 0);
        assert_eq!(script.phase_at(2_000_000).unwrap().0, 1);
        assert_eq!(script.phase_at(4_999_999).unwrap().0, 1);
        assert!(script.phase_at(5_000_000).is_none());
    }

    #[test]
    fn repeating_script_wraps() {
        let script = PhaseScript::repeating(vec![
            Phase::new(Rate::Limited(1.0), 1.0),
            Phase::new(Rate::Limited(2.0), 1.0),
        ]);
        assert_eq!(script.phase_at(2_500_000).unwrap().0, 0);
        assert_eq!(script.phase_at(3_500_000).unwrap().0, 1);
    }

    #[test]
    fn target_series() {
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(100.0), 2.0),
            Phase::new(Rate::Unlimited, 1.0),
        ]);
        let series = script.target_series(4, 9999.0);
        assert_eq!(series, vec![100.0, 100.0, 9999.0, 0.0]);
    }

    #[test]
    fn rate_display_roundtrip_exact() {
        for r in [
            Rate::Unlimited,
            Rate::Disabled,
            Rate::Limited(0.0),
            Rate::Limited(12.5),
            Rate::Limited(400.0),
            // A value with no short decimal form still round-trips exactly:
            // f64 Display prints the shortest digits that read back to the
            // same bits.
            Rate::Limited(1.0 / 3.0),
            Rate::Limited(f64::MAX),
        ] {
            assert_eq!(Rate::parse(&r.to_string()), Some(r), "{r}");
        }
    }

    #[test]
    fn arrival_display_roundtrip() {
        for a in [ArrivalDist::Uniform, ArrivalDist::Exponential] {
            assert_eq!(ArrivalDist::parse(&a.to_string()), Some(a), "{a}");
        }
    }

    #[test]
    fn phase_display_roundtrip_exact() {
        let phases = [
            Phase::new(Rate::Limited(200.0), 2.0),
            Phase::new(Rate::Unlimited, 0.25)
                .with_arrival(ArrivalDist::Exponential)
                .with_think_time(15_000),
            Phase::new(Rate::Limited(1.0 / 3.0), 1e-3).with_weights(vec![45.5, 54.5, 0.0]),
            Phase::new(Rate::Disabled, 3600.0).with_weights(vec![100.0]),
        ];
        for p in phases {
            let text = p.to_string();
            assert_eq!(Phase::parse(&text), Some(p), "{text}");
        }
    }

    #[test]
    fn phase_parse_rejects_malformed() {
        assert!(Phase::parse("").is_none(), "missing fields");
        assert!(Phase::parse("rate=100 arrival=uniform duration_s=1").is_none(), "no think_us");
        assert!(
            Phase::parse("rate=100 arrival=uniform duration_s=-1 think_us=0").is_none(),
            "negative duration"
        );
        assert!(
            Phase::parse("rate=100 arrival=uniform duration_s=1 think_us=0 bogus=1").is_none(),
            "unknown key"
        );
        assert!(
            Phase::parse("rate=100 arrival=uniform duration_s=1 think_us=0 weights=a,b").is_none(),
            "bad weights"
        );
    }

    #[test]
    fn phase_at_exact_boundaries() {
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(100.0), 2.0),
            Phase::new(Rate::Limited(300.0), 3.0),
        ]);
        let total = script.total_duration_us();
        assert_eq!(total, 5_000_000);
        // t exactly on a phase edge belongs to the *next* phase…
        assert_eq!(script.phase_at(2_000_000).unwrap().0, 1);
        // …and t exactly at total_duration_us is past the end.
        assert!(script.phase_at(total).is_none());
        assert!(script.phase_at(total + 1).is_none());

        // Repeating: the end wraps back to phase 0, mid-second-pass edges
        // land on the right phase.
        let repeating = PhaseScript::repeating(script.phases.clone());
        assert_eq!(repeating.phase_at(total).unwrap().0, 0);
        assert_eq!(repeating.phase_at(total + 2_000_000).unwrap().0, 1);

        // Degenerate scripts never resolve a phase.
        assert!(PhaseScript::default().phase_at(0).is_none());
        let zero = PhaseScript::new(vec![Phase::new(Rate::Limited(1.0), 0.0)]);
        assert!(zero.phase_at(0).is_none());
    }

    #[test]
    fn offsets_n0_and_n1() {
        let mut rng = Rng::new(9);
        for dist in [ArrivalDist::Uniform, ArrivalDist::Exponential] {
            assert!(dist.offsets(0, &mut rng).is_empty(), "{dist} n=0");
            let one = dist.offsets(1, &mut rng);
            assert_eq!(one.len(), 1, "{dist} n=1");
            assert!(one[0] < MICROS_PER_SEC, "{dist} offset {} outside second", one[0]);
        }
        // Uniform n=1 is pinned to the window start.
        assert_eq!(ArrivalDist::Uniform.offsets(1, &mut rng), vec![0]);
    }

    #[test]
    fn phase_builders() {
        let p = Phase::new(Rate::Limited(50.0), 1.5)
            .with_weights(vec![1.0, 2.0])
            .with_arrival(ArrivalDist::Exponential)
            .with_think_time(10_000);
        assert_eq!(p.duration_us(), 1_500_000);
        assert_eq!(p.weights.as_deref(), Some(&[1.0, 2.0][..]));
        assert_eq!(p.think_time_us, 10_000);
    }
}
