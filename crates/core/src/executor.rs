//! The threaded Workload Manager and its client workers (Fig. 1, §2.1).
//!
//! A manager thread asks a [`ScheduleSource`] for one window of timestamped
//! arrivals per second and pushes them to the central queue. The default
//! source ([`ScriptSchedule`](crate::schedule::ScriptSchedule)) generates
//! them live from the phase script (plus any runtime overrides from the
//! control API), exactly `rate` per second, interleaved uniformly or
//! exponentially; `bp-replay` substitutes a recorded schedule. Transaction
//! types are pinned on each request at generation time, so worker threads
//! ("terminals") just pull requests, invoke the benchmark's transaction
//! control code for the pinned type, optionally sleep a think time, and
//! loop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bp_chaos::{Admission, CircuitBreaker, FaultKind, ResilienceConfig, RetryBudget};
use bp_obs::{
    journal_now_us, ObsConfig, Severity, Span, SpanOutcome, SpanRecorder, TelemetryGuard,
    TelemetryRecorder, TelemetrySample,
};
use bp_sql::Connection;
use bp_storage::Database;
use bp_util::clock::{SharedClock, MICROS_PER_SEC};
use bp_util::rng::{next_backoff, Rng};

use crate::controller::{ControlState, Controller};
use crate::mixture::Mixture;
use crate::queue::RequestQueue;
use crate::rate::{PhaseScript, Rate};
use crate::schedule::{ScheduleSource, ScriptSchedule};
use crate::slo::SloConfig;
use crate::stats::{RequestOutcome, Sample, StatsCollector};
use crate::trace::{Trace, TraceRecord};
use crate::workload::{TxnOutcome, Workload};

/// Configuration for one workload run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of worker threads (terminals).
    pub terminals: usize,
    /// The phase script to execute.
    pub script: PhaseScript,
    /// RNG seed for workers.
    pub seed: u64,
    /// Collect a full trace (trace.txt) in memory.
    pub collect_trace: bool,
    /// Retries for retryable (lock-conflict) aborts before counting a
    /// request as failed.
    pub max_retries: u32,
    /// Arrival rate used for `Rate::Unlimited` (the "large configurable
    /// constant" of §2.2.1).
    pub unlimited_rate: f64,
    /// Request-lifecycle span recording (`observability.spans`).
    pub obs: ObsConfig,
    /// Tenant id stamped on spans (multi-tenant testbeds set this per run).
    pub tenant: u16,
    /// Client resilience: backoff, deadlines, retry budget, breaker.
    pub resilience: ResilienceConfig,
    /// Closed-loop SLO admission control; `None` runs open-loop.
    pub slo: Option<SloConfig>,
    /// Continuous telemetry recorder tick, µs of wall time (0 disables
    /// the recorder thread entirely).
    pub telemetry_interval_us: u64,
    /// Node identity in a bp-cluster fleet; single-process runs keep the
    /// default. Stamped on the controller so the agent layer and merged
    /// cluster views can attribute this run to a node.
    pub node: String,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            terminals: 4,
            script: PhaseScript::default(),
            seed: 42,
            collect_trace: true,
            max_retries: 3,
            unlimited_rate: 50_000.0,
            obs: ObsConfig::default(),
            tenant: 0,
            resilience: ResilienceConfig::default(),
            slo: None,
            telemetry_interval_us: 1_000_000,
            node: "local".to_string(),
        }
    }
}

/// A handle to a running workload: controller + joinable threads.
pub struct RunHandle {
    pub controller: Controller,
    pub trace: Option<Arc<Trace>>,
    /// The run's lifecycle flight recorder (also reachable via
    /// `controller.spans()`).
    pub spans: Arc<SpanRecorder>,
    threads: Vec<JoinHandle<()>>,
    active_workers: Arc<AtomicUsize>,
    /// Keeps the telemetry thread alive for the run's lifetime; dropping
    /// the handle (after `join`) stops it. The recorded samples stay
    /// readable through `controller.recorder()`.
    _telemetry: Option<TelemetryGuard>,
}

impl RunHandle {
    /// Wait for the run to finish (script end or stop()).
    pub fn join(mut self) -> Controller {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.controller.clone()
    }

    /// Ask the run to stop and wait for it.
    pub fn stop_and_join(self) -> Controller {
        self.controller.stop();
        self.join()
    }

    /// Number of workers still running.
    pub fn active_workers(&self) -> usize {
        self.active_workers.load(Ordering::Relaxed)
    }
}

/// Start a workload run on its own threads. The database must already be
/// loaded (use `workload.setup`). Arrivals are generated live from
/// `cfg.script` by a [`ScriptSchedule`].
pub fn start(
    db: Arc<Database>,
    workload: Arc<dyn Workload>,
    clock: SharedClock,
    cfg: RunConfig,
) -> RunHandle {
    let source = ScriptSchedule::new(cfg.script.clone(), cfg.unlimited_rate, cfg.seed);
    start_with_source(db, workload, clock, cfg, Box::new(source))
}

/// Start a workload run driven by an explicit schedule source (replay,
/// recording decorators, synthetic schedules). `cfg.script` is still used
/// for the initial rate/mixture and controller status display.
pub fn start_with_source(
    db: Arc<Database>,
    workload: Arc<dyn Workload>,
    clock: SharedClock,
    cfg: RunConfig,
    source: Box<dyn ScheduleSource>,
) -> RunHandle {
    let types = workload.transaction_types();
    let type_names: Vec<&str> = types.iter().map(|t| t.name).collect();
    let initial_phase = cfg.script.phases.first();
    let initial_rate = initial_phase.map(|p| p.rate).unwrap_or(Rate::Disabled);
    let initial_mixture = initial_phase
        .and_then(|p| p.weights.clone())
        .and_then(|w| Mixture::new(w).ok())
        .unwrap_or_else(|| Mixture::default_of(&types));

    let state = ControlState::new(initial_rate, initial_mixture, cfg.unlimited_rate);
    let queue = Arc::new(RequestQueue::new(clock.clone()));
    queue.set_rate(initial_rate.arrivals_per_second(cfg.unlimited_rate));
    let stats = Arc::new(StatsCollector::new(clock.clone(), &type_names));
    let trace = if cfg.collect_trace { Some(Arc::new(Trace::new())) } else { None };
    let spans = Arc::new(SpanRecorder::new(cfg.obs).with_journal(db.journal().clone()));
    stats.set_span_source(spans.clone());
    let breaker = cfg.resilience.breaker.as_ref().map(|b| {
        Arc::new(
            CircuitBreaker::new(workload.name(), b.clone()).with_journal(db.journal().clone()),
        )
    });
    let budget = Arc::new(RetryBudget::new(cfg.resilience.retry_budget_per_s));

    let mut controller = Controller::new(
        state.clone(),
        queue.clone(),
        stats.clone(),
        db.clone(),
        types,
        workload.name(),
    )
    .with_node(&cfg.node)
    .with_spans(spans.clone());
    if let Some(b) = &breaker {
        controller = controller.with_breaker(b.clone());
    }

    // Continuous telemetry: a background thread samples the client window
    // stats and per-interval engine-counter deltas into a flight-recorder
    // ring (`GET /report`, `bp-doctor`).
    let telemetry = if cfg.telemetry_interval_us > 0 {
        let recorder = Arc::new(TelemetryRecorder::new(cfg.telemetry_interval_us));
        controller = controller.with_recorder(recorder.clone());
        let guard = recorder.spawn(sensor(
            state.clone(),
            queue.clone(),
            stats.clone(),
            db.clone(),
            breaker.clone(),
            spans.clone(),
        ));
        Some(guard)
    } else {
        None
    };

    // Closed-loop SLO control: the loop thread is detached (it polls
    // stats, not the queue) and exits on stop via its epoch/stop checks.
    if let Some(slo_cfg) = &cfg.slo {
        controller.start_slo(slo_cfg.clone());
    }

    let active_workers = Arc::new(AtomicUsize::new(cfg.terminals));
    let mut threads = Vec::with_capacity(cfg.terminals + 1);

    // Manager thread.
    {
        let state = state.clone();
        let queue = queue.clone();
        let stats = stats.clone();
        let clock = clock.clone();
        let budget = budget.clone();
        threads.push(
            std::thread::Builder::new()
                .name("bp-manager".into())
                .spawn(move || manager_loop(state, queue, stats, clock, source, budget))
                .expect("spawn manager"),
        );
    }

    // Worker threads.
    for w in 0..cfg.terminals {
        let db = db.clone();
        let workload = workload.clone();
        let state = state.clone();
        let queue = queue.clone();
        let stats = stats.clone();
        let clock = clock.clone();
        let trace = trace.clone();
        let spans = spans.clone();
        let active = active_workers.clone();
        let max_retries = cfg.max_retries;
        let tenant = cfg.tenant;
        let seed = cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w as u64 + 1));
        let run_seed = cfg.seed;
        let breaker = breaker.clone();
        let budget = budget.clone();
        let resilience = cfg.resilience.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("bp-worker-{w}"))
                .spawn(move || {
                    worker_loop(WorkerCtx {
                        db,
                        workload,
                        state,
                        queue,
                        stats,
                        clock,
                        trace,
                        spans,
                        max_retries,
                        tenant,
                        seed,
                        run_seed,
                        breaker,
                        budget,
                        resilience,
                    });
                    active.fetch_sub(1, Ordering::Relaxed);
                })
                .expect("spawn worker"),
        );
    }

    RunHandle { controller, trace, spans, threads, active_workers, _telemetry: telemetry }
}

/// Build the telemetry sensor closure: one call = one [`TelemetrySample`].
/// Client-side window stats come from the collector, engine counters are
/// per-interval deltas of the server silo, and the breaker/queue/rate
/// gauges are read point-in-time.
fn sensor(
    state: Arc<ControlState>,
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    db: Arc<Database>,
    breaker: Option<Arc<CircuitBreaker>>,
    spans: Arc<SpanRecorder>,
) -> Box<dyn FnMut() -> TelemetrySample + Send> {
    let mut prev_srv = db.metrics().snapshot();
    let mut prev_done = 0u64;
    let mut prev_failed = 0u64;
    let mut prev_shed = 0u64;
    Box::new(move || {
        let win = stats.window_snapshot(3);
        // Feed the tail sampler: the live window p99 becomes its "slow"
        // cutoff (rise-slowly / fall-fast smoothing happens inside), and a
        // crashed engine marks the moment so in-flight requests that
        // straddle it are always retained.
        if win.count >= 20 {
            spans.set_slow_threshold(win.p99_us);
        }
        if db.is_crashed() {
            spans.note_crash(stats.clock().now());
        }
        let status = stats.status(3);
        let srv = db.metrics().snapshot();
        let d = srv.delta(&prev_srv);
        prev_srv = srv;
        let done_total = status.committed + status.user_aborted + status.failed;
        let done = done_total.saturating_sub(prev_done);
        let failed = status.failed.saturating_sub(prev_failed);
        let shed = status.shed.saturating_sub(prev_shed);
        prev_done = done_total;
        prev_failed = status.failed;
        prev_shed = status.shed;
        TelemetrySample {
            t_us: journal_now_us(),
            rate: match state.rate() {
                Rate::Limited(tps) => tps,
                Rate::Unlimited => f64::INFINITY,
                Rate::Disabled => 0.0,
            },
            throughput: win.throughput,
            p50_us: win.p50_us,
            p99_us: win.p99_us,
            error_rate: if done > 0 { failed as f64 / done as f64 } else { 0.0 },
            shed_rate: if done + shed > 0 {
                shed as f64 / (done + shed) as f64
            } else {
                0.0
            },
            breaker_state: breaker.as_ref().map(|b| b.state() as u8).unwrap_or(0),
            queue_depth: queue.backlog() as u64,
            commits: d.commits,
            lock_waits: d.lock_waits,
            lock_wait_us: d.lock_wait_micros,
            deadlocks: d.deadlocks,
            io_reads: d.io_reads,
            io_writes: d.io_writes,
            wal_fsyncs: d.wal_fsyncs,
            wal_bytes: d.wal_bytes,
            fsync_us: d.fsync_micros,
            buf_hits: d.buf_hits,
            buf_misses: d.buf_misses,
            busy_us: d.busy_micros,
        }
    })
}

/// The Workload Manager: one iteration per second, window contents decided
/// by the schedule source.
fn manager_loop(
    state: Arc<ControlState>,
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    clock: SharedClock,
    mut source: Box<dyn ScheduleSource>,
    budget: Arc<RetryBudget>,
) {
    let start = clock.now();
    let mut second: u64 = 0;

    loop {
        if state.is_stopped() {
            queue.close();
            return;
        }
        let boundary = start + second * MICROS_PER_SEC;
        let behind = clock.now().saturating_sub(boundary);
        let window = source.plan(second, behind, &state);

        if let Some(tps) = window.gate_tps {
            queue.set_rate(tps);
        }
        if !window.requests.is_empty() {
            let n = window.requests.len();
            queue.push_scheduled(boundary, window.requests);
            stats.record_requested(boundary, n);
        }
        if window.done {
            if source.drain_on_done() {
                // Replay: let the already-enqueued tail dispatch instead of
                // dropping it with the close.
                while !state.is_stopped() && queue.backlog() > 0 {
                    clock.sleep(20_000);
                }
            }
            state.stop();
            queue.close();
            return;
        }

        // One second's worth of fresh retry tokens (§ resilience).
        budget.refill();

        second += 1;
        clock.sleep_until(start + second * MICROS_PER_SEC);
    }
}

/// Best-effort panic payload text for the `worker_panic` journal event.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything one client worker needs; bundled so the span recorder and
/// tenant id ride along without a 12-argument function.
struct WorkerCtx {
    db: Arc<Database>,
    workload: Arc<dyn Workload>,
    state: Arc<ControlState>,
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    clock: SharedClock,
    trace: Option<Arc<Trace>>,
    spans: Arc<SpanRecorder>,
    max_retries: u32,
    tenant: u16,
    seed: u64,
    /// The unperturbed run seed: trace ids must be a function of
    /// (run seed, seq) alone so every worker — and every node replaying
    /// the same schedule — derives the same id for the same request.
    run_seed: u64,
    breaker: Option<Arc<CircuitBreaker>>,
    budget: Arc<RetryBudget>,
    resilience: ResilienceConfig,
}

/// One client worker ("terminal").
fn worker_loop(ctx: WorkerCtx) {
    let WorkerCtx {
        db,
        workload,
        state,
        queue,
        stats,
        clock,
        trace,
        spans,
        max_retries,
        tenant,
        seed,
        run_seed,
        breaker,
        budget,
        resilience,
    } = ctx;
    let mut conn = Connection::open(&db);
    let mut rng = Rng::new(seed);

    loop {
        // Stop wins over pause: a paused worker must still exit (a worker
        // spinning in the pause branch with a non-empty backlog would hang
        // join() forever — the queue drops its backlog on close anyway).
        if state.is_stopped() {
            return;
        }
        if state.is_paused() {
            // The control API temporarily blocks all threads from executing
            // transaction requests (§4.1.2).
            clock.sleep(2_000);
            continue;
        }
        let Some(req) = queue.pull(20_000) else {
            return; // queue closed
        };

        // The type was pinned at generation time (see `schedule`): no
        // worker-side sampling, so replay is exact and schedules are a pure
        // function of the seed.
        let txn_idx = req.txn_type as usize;
        let start = clock.now();
        // One mode check per request; the storage layer's stage accumulator
        // is always drained (here, pre-execution) so lock-wait/commit time
        // from an unrecorded request can't leak into a recorded one. The
        // retain/drop decision itself is tail-based: every completed span
        // is *offered* to the recorder, which keeps slow/errored/shed/
        // crash-straddling ones unconditionally.
        let record_span = spans.enabled();
        let tid = if record_span { bp_obs::trace_id(run_seed, req.seq) } else { 0 };
        bp_obs::take_stage_acc();

        // Admission control: an Open breaker fast-fails the request before
        // it touches the engine. Shed is its own bucket — never an error,
        // never throughput.
        let admission = match &breaker {
            Some(b) => b.admit(start, queue.backlog()),
            None => Admission::Allow,
        };
        if admission == Admission::Shed {
            stats.record(Sample {
                txn_type: txn_idx,
                arrival: req.arrival,
                start,
                end: start,
                outcome: RequestOutcome::Shed,
                retries: 0,
            });
            if record_span {
                spans.offer(Span {
                    trace_id: tid,
                    seq: req.seq,
                    submitted_us: req.arrival,
                    dequeued_us: start,
                    end_us: start,
                    lock_wait_us: 0,
                    commit_us: 0,
                    tenant,
                    phase: req.phase,
                    txn_type: txn_idx.min(u16::MAX as usize) as u16,
                    retries: 0,
                    outcome: SpanOutcome::Shed,
                });
            }
            if let Some(t) = &trace {
                t.append(TraceRecord {
                    start_us: start,
                    latency_us: 0,
                    txn_type: txn_idx,
                    outcome: RequestOutcome::Shed,
                });
            }
            continue;
        }

        // Mark this thread's in-flight trace so deep storage events
        // (deadlock victims, crashes) can cite the request that was
        // on-CPU when they fired.
        if record_span {
            bp_obs::set_current_trace(tid);
        }
        let mut retries = 0u32;
        let outcome = loop {
            // A tenant blackout invalidates the attempt before it reaches
            // the engine; it behaves like any retryable transient fault.
            let attempt = if db.chaos().blackout(tenant) {
                None
            } else {
                // Panic isolation: a panicking transaction (workload bug or
                // an injected `PanicStorm` fault) must not take the worker
                // thread down with it — OLTP-Bench terminals similarly
                // survive benchmark-code exceptions. The panic is caught,
                // the open transaction rolled back (releasing its locks),
                // and the request counted as a plain failure.
                match catch_unwind(AssertUnwindSafe(|| {
                    if db.chaos().roll(FaultKind::PanicStorm).is_some() {
                        panic!("injected worker panic (panic_storm)");
                    }
                    workload.execute(txn_idx, &mut conn, &mut rng)
                })) {
                    Ok(r) => Some(r),
                    Err(payload) => {
                        if conn.in_transaction() {
                            let _ = conn.rollback();
                        }
                        let msg = panic_message(payload.as_ref());
                        db.journal().emit_with(Severity::Error, "core", "worker_panic", || {
                            (
                                format!("worker survived transaction panic: {msg}"),
                                vec![
                                    ("txn_type", txn_idx.to_string()),
                                    ("panic", msg.clone()),
                                ],
                            )
                        });
                        break RequestOutcome::Failed;
                    }
                }
            };
            let retryable_failure = match attempt {
                Some(Ok(TxnOutcome::Committed)) => break RequestOutcome::Committed,
                Some(Ok(TxnOutcome::UserAborted)) => break RequestOutcome::UserAborted,
                Some(Err(e)) => {
                    // Defensive: the workload must leave the session idle.
                    if conn.in_transaction() {
                        let _ = conn.rollback();
                    }
                    e.is_retryable()
                }
                None => {
                    if conn.in_transaction() {
                        let _ = conn.rollback();
                    }
                    true
                }
            };
            // Deadline, the retry cap, and the cluster-wide retry budget
            // all end the request as Failed.
            let deadline_hit = resilience.deadline_us > 0
                && clock.now().saturating_sub(start) >= resilience.deadline_us;
            if !retryable_failure || retries >= max_retries || deadline_hit || !budget.take() {
                break RequestOutcome::Failed;
            }
            retries += 1;
            // Capped exponential backoff with deterministic jitter replaces
            // the old tight retry loop: contending workers spread out
            // instead of re-colliding in lockstep.
            if resilience.backoff_base_us > 0 {
                clock.sleep(next_backoff(
                    retries - 1,
                    resilience.backoff_base_us,
                    resilience.backoff_cap_us,
                    seed ^ req.seq,
                ));
            }
        };
        let end = clock.now();
        if record_span {
            bp_obs::set_current_trace(0);
        }

        if let Some(b) = &breaker {
            match outcome {
                RequestOutcome::Failed => b.on_failure(end),
                _ => b.on_success(),
            }
        }

        stats.record(Sample { txn_type: txn_idx, arrival: req.arrival, start, end, outcome, retries });
        if record_span {
            let (lock_wait_us, commit_us) = bp_obs::take_stage_acc();
            spans.offer(Span {
                trace_id: tid,
                seq: req.seq,
                submitted_us: req.arrival,
                dequeued_us: start,
                end_us: end,
                lock_wait_us,
                commit_us,
                tenant,
                phase: req.phase,
                txn_type: txn_idx.min(u16::MAX as usize) as u16,
                retries: retries.min(u16::MAX as u32) as u16,
                outcome: match outcome {
                    RequestOutcome::Committed => SpanOutcome::Committed,
                    RequestOutcome::UserAborted => SpanOutcome::UserAborted,
                    RequestOutcome::Failed => SpanOutcome::Failed,
                    RequestOutcome::Shed => unreachable!("shed recorded above"),
                },
            });
        }
        if let Some(t) = &trace {
            t.append(TraceRecord {
                start_us: start,
                latency_us: end - start,
                txn_type: txn_idx,
                outcome,
            });
        }

        let think = state.think_time_us();
        if think > 0 {
            clock.sleep(think);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{ArrivalDist, Phase};
    use crate::workload::{BenchmarkClass, LoadSummary, TransactionType};
    use bp_sql::Result as SqlResult;
    use bp_storage::Personality;
    use bp_util::clock::wall_clock;

    /// A trivial but real workload: single-row increments and reads.
    struct CounterWorkload;

    impl Workload for CounterWorkload {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn class(&self) -> BenchmarkClass {
            BenchmarkClass::FeatureTesting
        }
        fn domain(&self) -> &'static str {
            "Testing"
        }
        fn transaction_types(&self) -> Vec<TransactionType> {
            vec![
                TransactionType::new("Read", 50.0, true),
                TransactionType::new("Incr", 50.0, false),
            ]
        }
        fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
            conn.execute_batch("CREATE TABLE c (id INT PRIMARY KEY, v INT);")
        }
        fn load(&self, conn: &mut Connection, scale: f64, _rng: &mut Rng) -> SqlResult<LoadSummary> {
            let n = (10.0 * scale).max(1.0) as i64;
            for i in 0..n {
                conn.execute(
                    "INSERT INTO c VALUES (?, 0)",
                    &[bp_storage::Value::Int(i)],
                )?;
            }
            Ok(LoadSummary { tables: 1, rows: n as u64 })
        }
        fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
            let id = bp_storage::Value::Int(rng.int_range(0, 9));
            conn.begin()?;
            let r = (|| {
                if txn_idx == 0 {
                    conn.query("SELECT v FROM c WHERE id = ?", &[id])?;
                } else {
                    conn.execute("UPDATE c SET v = v + 1 WHERE id = ?", &[id])?;
                }
                Ok(())
            })();
            match r {
                Ok(()) => {
                    conn.commit()?;
                    Ok(TxnOutcome::Committed)
                }
                Err(e) => {
                    if conn.in_transaction() {
                        let _ = conn.rollback();
                    }
                    Err(e)
                }
            }
        }
    }

    fn setup() -> (Arc<Database>, Arc<dyn Workload>) {
        let db = Database::new(Personality::test());
        let w: Arc<dyn Workload> = Arc::new(CounterWorkload);
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 1.0, &mut Rng::new(1)).unwrap();
        (db, w)
    }

    #[test]
    fn throttled_run_delivers_target_rate() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 4,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(200.0), 2.0)]),
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        let controller = handle.join();
        let done = controller.stats().total_completed();
        // 2 seconds at 200 tps: expect ~400, allow wide margins for CI noise
        // (and the never-exceed property with a small dispatch tolerance).
        assert!((300..=440).contains(&(done as i64)), "completed {done}");
    }

    #[test]
    fn rate_change_via_controller_takes_effect() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(50.0), 10.0)]),
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        std::thread::sleep(std::time::Duration::from_millis(1100));
        let before = handle.controller.stats().total_completed();
        handle.controller.set_rate(Rate::Limited(400.0));
        std::thread::sleep(std::time::Duration::from_millis(2000));
        let after = handle.controller.stats().total_completed();
        handle.controller.stop();
        handle.join();
        let delta = after - before;
        assert!(delta > 350, "rate change not applied: {delta} in 2s");
    }

    #[test]
    fn pause_blocks_execution() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(200.0), 10.0)]),
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        std::thread::sleep(std::time::Duration::from_millis(500));
        handle.controller.pause();
        std::thread::sleep(std::time::Duration::from_millis(200));
        let before = handle.controller.stats().total_completed();
        std::thread::sleep(std::time::Duration::from_millis(500));
        let after = handle.controller.stats().total_completed();
        assert_eq!(before, after, "work executed while paused");
        handle.controller.resume();
        std::thread::sleep(std::time::Duration::from_millis(500));
        let resumed = handle.controller.stats().total_completed();
        assert!(resumed > after, "did not resume");
        handle.controller.stop();
        handle.join();
    }

    #[test]
    fn mixture_swap_changes_sampled_types() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![
                Phase::new(Rate::Limited(300.0), 10.0).with_weights(vec![100.0, 0.0]),
            ]),
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        std::thread::sleep(std::time::Duration::from_millis(800));
        // All reads so far.
        let summary = handle.controller.stats().per_type_summary();
        assert!(summary[1].count == 0, "writes before switch: {}", summary[1].count);
        handle.controller.set_mixture(vec![0.0, 100.0]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(800));
        let summary = handle.controller.stats().per_type_summary();
        assert!(summary[1].count > 0, "no writes after switch");
        handle.controller.stop();
        handle.join();
    }

    #[test]
    fn script_end_stops_run() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 0.5)]),
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        let controller = handle.join();
        assert!(controller.is_stopped());
    }

    #[test]
    fn trace_collected() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 1.0)]),
            collect_trace: true,
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        let trace = handle.trace.clone().unwrap();
        handle.join();
        assert!(trace.len() > 50, "trace has {} records", trace.len());
    }

    #[test]
    fn spans_full_mode_matches_stats_counts() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(300.0), 1.0)]),
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        let spans = handle.spans.clone();
        let controller = handle.join();
        let completed = controller.stats().total_completed();
        assert_eq!(spans.recorded(), completed, "full mode records every request");
        let sums = spans.stage_summaries();
        assert_eq!(sums[0].count, completed);
        // Spans carry the workload's txn types and real timestamps.
        let recent = spans.recent(10);
        assert!(!recent.is_empty());
        assert!(recent.iter().all(|s| s.txn_type < 2 && s.end_us >= s.dequeued_us));
    }

    #[test]
    fn span_modes_agree_on_aggregates() {
        let (db, w) = setup();
        let clock = wall_clock();
        let script = PhaseScript::new(vec![Phase::new(Rate::Limited(400.0), 1.0)]);

        // Off: stats still complete, zero spans.
        let cfg = RunConfig {
            terminals: 2,
            script: script.clone(),
            obs: bp_obs::ObsConfig { mode: bp_obs::SpanMode::Off, ..Default::default() },
            ..Default::default()
        };
        let handle = start(db.clone(), w.clone(), clock.clone(), cfg);
        let spans = handle.spans.clone();
        let completed_off = handle.join().stats().total_completed();
        assert!(completed_off > 100, "off-mode run completed {completed_off}");
        assert_eq!(spans.recorded(), 0, "off mode records nothing");

        // Sampled: recorded/completed within tolerance of the ratio.
        let cfg = RunConfig {
            terminals: 2,
            script,
            obs: bp_obs::ObsConfig {
                mode: bp_obs::SpanMode::Sampled,
                sample_ratio: 0.5,
                ..Default::default()
            },
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        let spans = handle.spans.clone();
        let completed = handle.join().stats().total_completed();
        let observed = spans.recorded() as f64 / completed as f64;
        assert!(
            (0.3..=0.7).contains(&observed),
            "sampled ratio {observed} too far from 0.5 ({} of {completed})",
            spans.recorded()
        );
    }

    #[test]
    fn worker_survives_injected_panics() {
        use bp_chaos::{FaultPlan, FaultWindow};
        let (db, w) = setup();
        let clock = wall_clock();
        // Every transaction panics its worker mid-execution for the whole
        // run. The workers must survive (isolation), count the requests as
        // failures, and journal each panic.
        db.chaos().arm(
            FaultPlan::new("storm", 7)
                .with_window(FaultWindow::always(bp_chaos::FaultKind::PanicStorm, 1.0, 0)),
        );
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(60.0), 0.5)]),
            ..Default::default()
        };
        let handle = start(db.clone(), w, clock, cfg);
        let controller = handle.join();
        db.chaos().disarm();
        let status = controller.stats().status(60);
        assert_eq!(status.committed, 0, "every attempt panicked");
        assert!(status.failed > 0, "panics counted as failures");
        let panics = db
            .journal()
            .all()
            .iter()
            .filter(|e| e.kind == "worker_panic")
            .count();
        assert!(panics > 0, "worker_panic events journaled");
        assert!(panics as u64 >= status.failed, "one journal event per panic");
    }

    #[test]
    fn phase_transition_applies_new_weights() {
        let (db, w) = setup();
        let clock = wall_clock();
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![
                Phase::new(Rate::Limited(200.0), 1.0).with_weights(vec![100.0, 0.0]),
                Phase::new(Rate::Limited(200.0), 1.0)
                    .with_weights(vec![0.0, 100.0])
                    .with_arrival(ArrivalDist::Exponential),
            ]),
            ..Default::default()
        };
        let handle = start(db, w, clock, cfg);
        let controller = handle.join();
        let summary = controller.stats().per_type_summary();
        assert!(summary[0].count > 0, "phase 1 reads missing");
        assert!(summary[1].count > 0, "phase 2 writes missing");
    }
}
