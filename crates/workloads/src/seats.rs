//! SEATS: the Stonebraker Electronic Airline Ticketing System benchmark
//! ("On-line Airline Ticketing", Table 1, Transactional).

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_f, p_i, p_s, run_txn};

const BASE_FLIGHTS: i64 = 100;
const BASE_CUSTOMERS: i64 = 500;
const AIRPORTS: i64 = 20;
const SEATS_PER_FLIGHT: i64 = 150;

pub struct Seats {
    flights: AtomicI64,
    customers: AtomicI64,
    next_reservation: AtomicI64,
}

impl Default for Seats {
    fn default() -> Self {
        Seats::new()
    }
}

impl Seats {
    pub fn new() -> Seats {
        Seats {
            flights: AtomicI64::new(BASE_FLIGHTS),
            customers: AtomicI64::new(BASE_CUSTOMERS),
            next_reservation: AtomicI64::new(1_000_000),
        }
    }

    fn flight(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.flights.load(Ordering::Relaxed).max(1) - 1)
    }

    fn customer(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.customers.load(Ordering::Relaxed).max(1) - 1)
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_airport",
        "CREATE TABLE airport (ap_id INT PRIMARY KEY, ap_code VARCHAR(3) NOT NULL, ap_city VARCHAR(32))",
    );
    cat.define(
        "create_customer",
        "CREATE TABLE seats_customer (c_id INT PRIMARY KEY, c_base_ap_id INT, c_balance FLOAT, \
         c_name VARCHAR(64))",
    );
    cat.define(
        "create_flight",
        "CREATE TABLE flight (f_id INT PRIMARY KEY, f_depart_ap_id INT NOT NULL, \
         f_arrive_ap_id INT NOT NULL, f_depart_time INT NOT NULL, f_base_price FLOAT, \
         f_seats_left INT NOT NULL)",
    );
    cat.define("create_flight_route_idx", "CREATE INDEX idx_flight_route ON flight (f_depart_ap_id, f_arrive_ap_id)");
    cat.define(
        "create_reservation",
        "CREATE TABLE reservation (r_id INT PRIMARY KEY, r_c_id INT NOT NULL, r_f_id INT NOT NULL, \
         r_seat INT NOT NULL, r_price FLOAT)",
    );
    cat.define("create_reservation_flight_idx", "CREATE INDEX idx_res_flight ON reservation (r_f_id, r_seat)");
    cat.define("create_reservation_customer_idx", "CREATE INDEX idx_res_customer ON reservation (r_c_id)");
    cat.define(
        "find_flights",
        "SELECT f_id, f_depart_time, f_base_price FROM flight \
         WHERE f_depart_ap_id = ? AND f_arrive_ap_id = ? ORDER BY f_depart_time LIMIT 10",
    );
    cat.define("find_open_seats", "SELECT f_seats_left FROM flight WHERE f_id = ?");
    cat.define("get_reservations_by_flight", "SELECT r_seat FROM reservation WHERE r_f_id = ?");
    cat
}

impl Workload for Seats {
    fn name(&self) -> &'static str {
        "seats"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::Transactional
    }

    fn domain(&self) -> &'static str {
        "On-line Airline Ticketing"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("FindFlights", 10.0, true),
            TransactionType::new("FindOpenSeats", 35.0, true),
            TransactionType::new("NewReservation", 20.0, false).with_cost(1.5),
            TransactionType::new("UpdateCustomer", 10.0, false),
            TransactionType::new("UpdateReservation", 15.0, false),
            TransactionType::new("DeleteReservation", 10.0, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_airport",
            "create_customer",
            "create_flight",
            "create_flight_route_idx",
            "create_reservation",
            "create_reservation_flight_idx",
            "create_reservation_customer_idx",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let mut rows = 0u64;
        for a in 0..AIRPORTS {
            conn.execute(
                "INSERT INTO airport VALUES (?, ?, ?)",
                &[p_i(a), p_s(rng.astring(3, 3).to_uppercase()), p_s(rng.astring(6, 16))],
            )?;
            rows += 1;
        }
        let customers = ((BASE_CUSTOMERS as f64 * scale) as i64).max(20);
        for c in 0..customers {
            conn.execute(
                "INSERT INTO seats_customer VALUES (?, ?, ?, ?)",
                &[
                    p_i(c),
                    p_i(rng.int_range(0, AIRPORTS - 1)),
                    p_f(rng.f64_range(0.0, 1_000.0)),
                    p_s(bp_util::text::full_name(rng)),
                ],
            )?;
            rows += 1;
        }
        let flights = ((BASE_FLIGHTS as f64 * scale) as i64).max(10);
        for f in 0..flights {
            let depart = rng.int_range(0, AIRPORTS - 1);
            let arrive = loop {
                let a = rng.int_range(0, AIRPORTS - 1);
                if a != depart {
                    break a;
                }
            };
            conn.execute(
                "INSERT INTO flight VALUES (?, ?, ?, ?, ?, ?)",
                &[
                    p_i(f),
                    p_i(depart),
                    p_i(arrive),
                    p_i(rng.int_range(0, 30 * 24)),
                    p_f(rng.f64_range(50.0, 800.0)),
                    p_i(SEATS_PER_FLIGHT),
                ],
            )?;
            rows += 1;
        }
        // Pre-book some reservations.
        let mut r_id = 0;
        for f in 0..flights {
            for seat in 0..rng.int_range(5, 30) {
                conn.execute(
                    "INSERT INTO reservation VALUES (?, ?, ?, ?, ?)",
                    &[
                        p_i(r_id),
                        p_i(rng.int_range(0, customers - 1)),
                        p_i(f),
                        p_i(seat),
                        p_f(rng.f64_range(50.0, 800.0)),
                    ],
                )?;
                conn.execute(
                    "UPDATE flight SET f_seats_left = f_seats_left - 1 WHERE f_id = ?",
                    &[p_i(f)],
                )?;
                r_id += 1;
                rows += 1;
            }
        }
        self.flights.store(flights, Ordering::Relaxed);
        self.customers.store(customers, Ordering::Relaxed);
        Ok(LoadSummary { tables: 4, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        match txn_idx {
            // FindFlights: route search.
            0 => {
                let depart = p_i(rng.int_range(0, AIRPORTS - 1));
                let arrive = p_i(rng.int_range(0, AIRPORTS - 1));
                run_txn(conn, |c| {
                    c.query(
                        "SELECT f_id, f_depart_time, f_base_price FROM flight \
                         WHERE f_depart_ap_id = ? AND f_arrive_ap_id = ? ORDER BY f_depart_time LIMIT 10",
                        &[depart, arrive],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // FindOpenSeats: seats left + booked seat map.
            1 => {
                let f = self.flight(rng);
                run_txn(conn, |c| {
                    c.query("SELECT f_seats_left FROM flight WHERE f_id = ?", &[p_i(f)])?;
                    c.query("SELECT r_seat FROM reservation WHERE r_f_id = ?", &[p_i(f)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // NewReservation.
            2 => {
                let f = self.flight(rng);
                let cust = self.customer(rng);
                let r_id = self.next_reservation.fetch_add(1, Ordering::Relaxed);
                let seat = rng.int_range(0, SEATS_PER_FLIGHT - 1);
                let price = rng.f64_range(50.0, 800.0);
                run_txn(conn, |c| {
                    let left = c
                        .query("SELECT f_seats_left FROM flight WHERE f_id = ? FOR UPDATE", &[p_i(f)])?
                        .get_int(0, "f_seats_left")
                        .unwrap_or(0);
                    if left <= 0 {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    let taken = c.query(
                        "SELECT r_id FROM reservation WHERE r_f_id = ? AND r_seat = ?",
                        &[p_i(f), p_i(seat)],
                    )?;
                    if !taken.is_empty() {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    c.execute(
                        "INSERT INTO reservation VALUES (?, ?, ?, ?, ?)",
                        &[p_i(r_id), p_i(cust), p_i(f), p_i(seat), p_f(price)],
                    )?;
                    c.execute(
                        "UPDATE flight SET f_seats_left = f_seats_left - 1 WHERE f_id = ?",
                        &[p_i(f)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // UpdateCustomer.
            3 => {
                let cust = self.customer(rng);
                let delta = rng.f64_range(-50.0, 50.0);
                run_txn(conn, |c| {
                    c.execute(
                        "UPDATE seats_customer SET c_balance = c_balance + ? WHERE c_id = ?",
                        &[p_f(delta), p_i(cust)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // UpdateReservation: change seat.
            4 => {
                let cust = self.customer(rng);
                let new_seat = rng.int_range(0, SEATS_PER_FLIGHT - 1);
                run_txn(conn, |c| {
                    let rs = c.query(
                        "SELECT r_id, r_f_id FROM reservation WHERE r_c_id = ? LIMIT 1",
                        &[p_i(cust)],
                    )?;
                    let Some(r_id) = rs.get_int(0, "r_id") else {
                        return Ok(TxnOutcome::UserAborted);
                    };
                    let f_id = rs.get_int(0, "r_f_id").unwrap();
                    let taken = c.query(
                        "SELECT r_id FROM reservation WHERE r_f_id = ? AND r_seat = ?",
                        &[p_i(f_id), p_i(new_seat)],
                    )?;
                    if !taken.is_empty() {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    c.execute(
                        "UPDATE reservation SET r_seat = ? WHERE r_id = ?",
                        &[p_i(new_seat), p_i(r_id)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // DeleteReservation.
            5 => {
                let cust = self.customer(rng);
                run_txn(conn, |c| {
                    let rs = c.query(
                        "SELECT r_id, r_f_id FROM reservation WHERE r_c_id = ? LIMIT 1",
                        &[p_i(cust)],
                    )?;
                    let Some(r_id) = rs.get_int(0, "r_id") else {
                        return Ok(TxnOutcome::UserAborted);
                    };
                    let f_id = rs.get_int(0, "r_f_id").unwrap();
                    c.execute("DELETE FROM reservation WHERE r_id = ?", &[p_i(r_id)])?;
                    c.execute(
                        "UPDATE flight SET f_seats_left = f_seats_left + 1 WHERE f_id = ?",
                        &[p_i(f_id)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            other => panic!("seats has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Seats, Connection) {
        let db = Database::new(Personality::test());
        let w = Seats::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..6 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn reservation_seat_uniqueness_respected() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            w.execute(2, &mut conn, &mut rng).unwrap();
        }
        // No flight may have two reservations for the same seat.
        let dup = conn
            .query(
                "SELECT r_f_id, r_seat, COUNT(*) AS n FROM reservation GROUP BY r_f_id, r_seat ORDER BY n DESC LIMIT 1",
                &[],
            )
            .unwrap();
        assert_eq!(dup.get_int(0, "n"), Some(1));
    }

    #[test]
    fn delete_returns_seat_to_pool() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(4);
        let before = conn
            .query("SELECT SUM(f_seats_left) AS t FROM flight", &[])
            .unwrap()
            .get_int(0, "t")
            .unwrap();
        let mut deleted = 0;
        for _ in 0..50 {
            if w.execute(5, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                deleted += 1;
            }
        }
        let after = conn
            .query("SELECT SUM(f_seats_left) AS t FROM flight", &[])
            .unwrap()
            .get_int(0, "t")
            .unwrap();
        assert_eq!(after - before, deleted);
    }

    #[test]
    fn weights_sum_to_100() {
        assert!((Seats::new().default_weights().iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
