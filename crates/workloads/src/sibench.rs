//! SIBench: the transactional-isolation micro-benchmark (Table 1, Feature
//! Testing). A single table of (id, value); readers scan for the minimum
//! value while writers bump individual records — the canonical probe for
//! write-skew / snapshot-isolation anomalies. Our engine runs strict 2PL
//! (serializable), so the invariant checked below must always hold.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_i, run_txn};

const BASE_ROWS: i64 = 100;

pub struct SiBench {
    rows: AtomicI64,
}

impl Default for SiBench {
    fn default() -> Self {
        SiBench::new()
    }
}

impl SiBench {
    pub fn new() -> SiBench {
        SiBench { rows: AtomicI64::new(BASE_ROWS) }
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_sitest",
        "CREATE TABLE sitest (id INT PRIMARY KEY, value INT NOT NULL)",
    );
    cat.define("min_value", "SELECT MIN(value) AS m FROM sitest");
    cat.define("update_record", "UPDATE sitest SET value = value + 1 WHERE id = ?");
    cat
}

impl Workload for SiBench {
    fn name(&self) -> &'static str {
        "sibench"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::FeatureTesting
    }

    fn domain(&self) -> &'static str {
        "Transactional Isolation"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("MinRecord", 50.0, true).with_cost(2.0),
            TransactionType::new("UpdateRecord", 50.0, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        conn.execute(&cat.resolve("create_sitest", bp_sql::Dialect::MySql).unwrap(), &[])?;
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, _rng: &mut Rng) -> SqlResult<LoadSummary> {
        let n = ((BASE_ROWS as f64 * scale) as i64).max(10);
        for i in 0..n {
            conn.execute("INSERT INTO sitest VALUES (?, ?)", &[p_i(i), p_i(i)])?;
        }
        self.rows.store(n, Ordering::Relaxed);
        Ok(LoadSummary { tables: 1, rows: n as u64 })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let n = self.rows.load(Ordering::Relaxed).max(1);
        match txn_idx {
            0 => run_txn(conn, |c| {
                c.query("SELECT MIN(value) AS m FROM sitest", &[])?;
                Ok(TxnOutcome::Committed)
            }),
            1 => {
                let id = rng.int_range(0, n - 1);
                run_txn(conn, |c| {
                    c.execute("UPDATE sitest SET value = value + 1 WHERE id = ?", &[p_i(id)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            other => panic!("sibench has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};
    use std::sync::Arc;

    fn setup() -> (Arc<bp_storage::Database>, SiBench) {
        let db = Database::new(Personality::test());
        let w = SiBench::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 1.0, &mut Rng::new(1)).unwrap();
        (db, w)
    }

    #[test]
    fn both_transactions_run() {
        let (db, w) = setup();
        let mut conn = Connection::open(&db);
        let mut rng = Rng::new(2);
        for _ in 0..20 {
            w.execute(0, &mut conn, &mut rng).unwrap();
            w.execute(1, &mut conn, &mut rng).unwrap();
        }
    }

    #[test]
    fn serializable_min_never_goes_backwards_under_concurrency() {
        // Readers and writers race; under serializable execution the minimum
        // observed by successive reads is monotonically non-decreasing
        // (values only increase). An SI anomaly would not show here, but a
        // broken lock manager would.
        let (db, w) = setup();
        let w = Arc::new(w);
        let writer_db = db.clone();
        let ww = w.clone();
        let writer = std::thread::spawn(move || {
            let mut conn = Connection::open(&writer_db);
            let mut rng = Rng::new(3);
            for _ in 0..300 {
                // Retry on wait-die aborts.
                loop {
                    match ww.execute(1, &mut conn, &mut rng) {
                        Ok(_) => break,
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        });
        let mut conn = Connection::open(&db);
        let mut last_min = -1i64;
        for _ in 0..50 {
            let m = loop {
                match conn.query("SELECT MIN(value) AS m FROM sitest", &[]) {
                    Ok(rs) => break rs.get_int(0, "m").unwrap(),
                    Err(e) if e.is_retryable() => continue,
                    Err(e) => panic!("{e}"),
                }
            };
            assert!(m >= last_min, "min went backwards: {m} < {last_min}");
            last_min = m;
        }
        writer.join().unwrap();
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
