//! SmallBank: the banking micro-benchmark (Table 1, Transactional).
//!
//! Six transactions over `accounts` / `savings` / `checking`, with a hot-spot
//! access pattern: a small fraction of accounts receives most operations,
//! which generates realistic lock contention for the mixture experiments.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_f, p_i, p_s, run_txn};

const BASE_ACCOUNTS: i64 = 1_000;
/// Probability of touching the hot set.
const HOT_PROB: f64 = 0.9;
/// Size of the hot set as a fraction of all accounts.
const HOT_FRACTION: f64 = 0.05;

pub struct SmallBank {
    accounts: AtomicI64,
}

impl Default for SmallBank {
    fn default() -> Self {
        SmallBank::new()
    }
}

impl SmallBank {
    pub fn new() -> SmallBank {
        SmallBank { accounts: AtomicI64::new(BASE_ACCOUNTS) }
    }

    fn account(&self, rng: &mut Rng) -> i64 {
        let n = self.accounts.load(Ordering::Relaxed).max(1);
        let hot = ((n as f64 * HOT_FRACTION) as i64).max(1);
        if rng.bool_with(HOT_PROB) {
            rng.int_range(0, hot - 1)
        } else {
            rng.int_range(0, n - 1)
        }
    }

    fn two_accounts(&self, rng: &mut Rng) -> (i64, i64) {
        let a = self.account(rng);
        loop {
            let b = self.account(rng);
            if b != a {
                return (a, b);
            }
        }
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_accounts",
        "CREATE TABLE accounts (custid INT PRIMARY KEY, name VARCHAR(64) NOT NULL)",
    );
    cat.define(
        "create_savings",
        "CREATE TABLE savings (custid INT PRIMARY KEY, bal FLOAT NOT NULL)",
    );
    cat.define(
        "create_checking",
        "CREATE TABLE checking (custid INT PRIMARY KEY, bal FLOAT NOT NULL)",
    );
    cat.define("get_account", "SELECT * FROM accounts WHERE custid = ?");
    cat.define("get_savings", "SELECT bal FROM savings WHERE custid = ?");
    cat.define("get_checking", "SELECT bal FROM checking WHERE custid = ?");
    cat.define("update_savings", "UPDATE savings SET bal = bal + ? WHERE custid = ?");
    cat.define("update_checking", "UPDATE checking SET bal = bal + ? WHERE custid = ?");
    cat.define("zero_checking", "UPDATE checking SET bal = 0 WHERE custid = ?");
    cat
}

impl Workload for SmallBank {
    fn name(&self) -> &'static str {
        "smallbank"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::Transactional
    }

    fn domain(&self) -> &'static str {
        "Banking System"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("Balance", 25.0, true),
            TransactionType::new("DepositChecking", 15.0, false),
            TransactionType::new("TransactSavings", 15.0, false),
            TransactionType::new("Amalgamate", 15.0, false).with_cost(1.5),
            TransactionType::new("WriteCheck", 15.0, false),
            TransactionType::new("SendPayment", 15.0, false).with_cost(1.5),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in ["create_accounts", "create_savings", "create_checking"] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let n = ((BASE_ACCOUNTS as f64 * scale) as i64).max(20);
        for id in 0..n {
            conn.execute(
                "INSERT INTO accounts VALUES (?, ?)",
                &[p_i(id), p_s(bp_util::text::full_name(rng))],
            )?;
            conn.execute(
                "INSERT INTO savings VALUES (?, ?)",
                &[p_i(id), p_f(rng.f64_range(100.0, 50_000.0))],
            )?;
            conn.execute(
                "INSERT INTO checking VALUES (?, ?)",
                &[p_i(id), p_f(rng.f64_range(100.0, 50_000.0))],
            )?;
        }
        self.accounts.store(n, Ordering::Relaxed);
        Ok(LoadSummary { tables: 3, rows: (3 * n) as u64 })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        match txn_idx {
            // Balance: read both balances.
            0 => {
                let id = self.account(rng);
                run_txn(conn, |c| {
                    c.query("SELECT bal FROM savings WHERE custid = ?", &[p_i(id)])?;
                    c.query("SELECT bal FROM checking WHERE custid = ?", &[p_i(id)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // DepositChecking.
            1 => {
                let id = self.account(rng);
                let amount = rng.f64_range(1.0, 100.0);
                run_txn(conn, |c| {
                    c.execute(
                        "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                        &[p_f(amount), p_i(id)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // TransactSavings: withdraw if sufficient funds.
            2 => {
                let id = self.account(rng);
                let amount = rng.f64_range(1.0, 100.0);
                run_txn(conn, |c| {
                    let bal = c
                        .query("SELECT bal FROM savings WHERE custid = ? FOR UPDATE", &[p_i(id)])?
                        .get_f64(0, "bal")
                        .unwrap_or(0.0);
                    if bal < amount {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    c.execute(
                        "UPDATE savings SET bal = bal - ? WHERE custid = ?",
                        &[p_f(amount), p_i(id)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // Amalgamate: move everything from savings+checking of A to
            // checking of B.
            3 => {
                let (a, b) = self.two_accounts(rng);
                run_txn(conn, |c| {
                    let s = c
                        .query("SELECT bal FROM savings WHERE custid = ? FOR UPDATE", &[p_i(a)])?
                        .get_f64(0, "bal")
                        .unwrap_or(0.0);
                    let k = c
                        .query("SELECT bal FROM checking WHERE custid = ? FOR UPDATE", &[p_i(a)])?
                        .get_f64(0, "bal")
                        .unwrap_or(0.0);
                    c.execute("UPDATE savings SET bal = 0 WHERE custid = ?", &[p_i(a)])?;
                    c.execute("UPDATE checking SET bal = 0 WHERE custid = ?", &[p_i(a)])?;
                    c.execute(
                        "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                        &[p_f(s + k), p_i(b)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // WriteCheck: overdraft penalty if insufficient.
            4 => {
                let id = self.account(rng);
                let amount = rng.f64_range(1.0, 200.0);
                run_txn(conn, |c| {
                    let s = c
                        .query("SELECT bal FROM savings WHERE custid = ?", &[p_i(id)])?
                        .get_f64(0, "bal")
                        .unwrap_or(0.0);
                    let k = c
                        .query("SELECT bal FROM checking WHERE custid = ? FOR UPDATE", &[p_i(id)])?
                        .get_f64(0, "bal")
                        .unwrap_or(0.0);
                    let charge = if s + k < amount { amount + 1.0 } else { amount };
                    c.execute(
                        "UPDATE checking SET bal = bal - ? WHERE custid = ?",
                        &[p_f(charge), p_i(id)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // SendPayment: checking -> checking transfer.
            5 => {
                let (a, b) = self.two_accounts(rng);
                let amount = rng.f64_range(1.0, 100.0);
                run_txn(conn, |c| {
                    let bal = c
                        .query("SELECT bal FROM checking WHERE custid = ? FOR UPDATE", &[p_i(a)])?
                        .get_f64(0, "bal")
                        .unwrap_or(0.0);
                    if bal < amount {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    c.execute(
                        "UPDATE checking SET bal = bal - ? WHERE custid = ?",
                        &[p_f(amount), p_i(a)],
                    )?;
                    c.execute(
                        "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                        &[p_f(amount), p_i(b)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            other => panic!("smallbank has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (SmallBank, Connection) {
        let db = Database::new(Personality::test());
        let w = SmallBank::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.1, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..6 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn send_payment_conserves_total_checking() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        let before = conn
            .query("SELECT SUM(bal) AS t FROM checking", &[])
            .unwrap()
            .get_f64(0, "t")
            .unwrap();
        for _ in 0..50 {
            w.execute(5, &mut conn, &mut rng).unwrap();
        }
        let after = conn
            .query("SELECT SUM(bal) AS t FROM checking", &[])
            .unwrap()
            .get_f64(0, "t")
            .unwrap();
        assert!((before - after).abs() < 1e-6, "leaked {}", before - after);
    }

    #[test]
    fn amalgamate_zeroes_source() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(4);
        for _ in 0..20 {
            w.execute(3, &mut conn, &mut rng).unwrap();
        }
        // At least one account should now have zero savings.
        let zeros = conn
            .query("SELECT COUNT(*) AS n FROM savings WHERE bal = 0", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert!(zeros > 0);
    }

    #[test]
    fn hot_accounts_dominate() {
        let (w, _) = setup();
        let mut rng = Rng::new(5);
        let hot = (0..10_000).filter(|_| w.account(&mut rng) < 5).count();
        assert!(hot > 5_000, "hot share {hot}");
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
