//! YCSB: the Yahoo! Cloud Serving Benchmark ("Scalable Key-value Store",
//! Table 1, Feature Testing).
//!
//! One `usertable` with a key and 10 value fields; operations Read, Update,
//! Insert, Scan, ReadModifyWrite and Delete over a zipfian key
//! distribution.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::{Rng, Zipf};

use crate::helpers::{p_i, p_s, run_txn};

const FIELDS: usize = 10;
const BASE_RECORDS: i64 = 1_000;
const ZIPF_THETA: f64 = 0.9;

pub struct Ycsb {
    records: AtomicI64,
    zipf: Zipf,
}

impl Default for Ycsb {
    fn default() -> Self {
        Ycsb::new()
    }
}

impl Ycsb {
    pub fn new() -> Ycsb {
        Ycsb { records: AtomicI64::new(0), zipf: Zipf::new(BASE_RECORDS as u64, ZIPF_THETA) }
    }

    fn key(&self, rng: &mut Rng) -> i64 {
        let n = self.records.load(Ordering::Relaxed).max(1) as u64;
        // Zipf over the loaded domain, clamped in case of deletes.
        (self.zipf.sample(rng) % n) as i64
    }
}

/// The statement catalog (canonical SQL; dialect-translated per target).
pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_usertable",
        "CREATE TABLE usertable (ycsb_key INT PRIMARY KEY, \
         field0 VARCHAR(100), field1 VARCHAR(100), field2 VARCHAR(100), field3 VARCHAR(100), \
         field4 VARCHAR(100), field5 VARCHAR(100), field6 VARCHAR(100), field7 VARCHAR(100), \
         field8 VARCHAR(100), field9 VARCHAR(100))",
    );
    cat.define("read", "SELECT * FROM usertable WHERE ycsb_key = ?");
    cat.define("update", "UPDATE usertable SET field0 = ? WHERE ycsb_key = ?");
    cat.define(
        "insert",
        "INSERT INTO usertable VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
    );
    cat.define(
        "scan",
        "SELECT * FROM usertable WHERE ycsb_key >= ? AND ycsb_key < ? LIMIT 100",
    );
    cat.define("delete", "DELETE FROM usertable WHERE ycsb_key = ?");
    cat
}

fn field(rng: &mut Rng) -> bp_storage::Value {
    p_s(rng.astring(32, 100))
}

impl Workload for Ycsb {
    fn name(&self) -> &'static str {
        "ycsb"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::FeatureTesting
    }

    fn domain(&self) -> &'static str {
        "Scalable Key-value Store"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("Read", 50.0, true),
            TransactionType::new("Update", 35.0, false),
            TransactionType::new("Insert", 5.0, false),
            TransactionType::new("Scan", 5.0, true).with_cost(3.0),
            TransactionType::new("ReadModifyWrite", 4.0, false).with_cost(1.5),
            TransactionType::new("Delete", 1.0, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        conn.execute(&cat.resolve("create_usertable", bp_sql::Dialect::MySql).unwrap(), &[])?;
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let n = ((BASE_RECORDS as f64 * scale) as i64).max(10);
        for key in 0..n {
            let mut params = Vec::with_capacity(FIELDS + 1);
            params.push(p_i(key));
            for _ in 0..FIELDS {
                params.push(field(rng));
            }
            conn.execute(
                "INSERT INTO usertable VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                &params,
            )?;
        }
        self.records.store(n, Ordering::Relaxed);
        Ok(LoadSummary { tables: 1, rows: n as u64 })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let key = self.key(rng);
        match txn_idx {
            0 => run_txn(conn, |c| {
                c.query("SELECT * FROM usertable WHERE ycsb_key = ?", &[p_i(key)])?;
                Ok(TxnOutcome::Committed)
            }),
            1 => {
                let v = field(rng);
                run_txn(conn, |c| {
                    c.execute(
                        "UPDATE usertable SET field0 = ? WHERE ycsb_key = ?",
                        &[v, p_i(key)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            2 => {
                let new_key = self.records.fetch_add(1, Ordering::Relaxed);
                let mut params = Vec::with_capacity(FIELDS + 1);
                params.push(p_i(new_key));
                for _ in 0..FIELDS {
                    params.push(field(rng));
                }
                run_txn(conn, |c| {
                    c.execute(
                        "INSERT INTO usertable VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        &params,
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            3 => {
                let span = rng.int_range(10, 100);
                run_txn(conn, |c| {
                    c.query(
                        "SELECT * FROM usertable WHERE ycsb_key >= ? AND ycsb_key < ? LIMIT 100",
                        &[p_i(key), p_i(key + span)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            4 => {
                let v = field(rng);
                run_txn(conn, |c| {
                    c.query(
                        "SELECT * FROM usertable WHERE ycsb_key = ? FOR UPDATE",
                        &[p_i(key)],
                    )?;
                    c.execute(
                        "UPDATE usertable SET field1 = ? WHERE ycsb_key = ?",
                        &[v, p_i(key)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            5 => run_txn(conn, |c| {
                c.execute("DELETE FROM usertable WHERE ycsb_key = ?", &[p_i(key)])?;
                Ok(TxnOutcome::Committed)
            }),
            other => panic!("ycsb has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Ycsb, Connection) {
        let db = Database::new(Personality::test());
        let w = Ycsb::new();
        let mut conn = Connection::open(&db);
        w.create_schema(&mut conn).unwrap();
        w.load(&mut conn, 0.1, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn load_scales() {
        let (_, mut conn) = setup();
        let n = conn
            .query("SELECT COUNT(*) AS n FROM usertable", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert_eq!(n, 100);
    }

    #[test]
    fn every_transaction_type_runs() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..w.transaction_types().len() {
            for _ in 0..5 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn insert_grows_table() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        let before = conn.query("SELECT COUNT(*) AS n FROM usertable", &[]).unwrap().get_int(0, "n").unwrap();
        for _ in 0..10 {
            w.execute(2, &mut conn, &mut rng).unwrap();
        }
        let after = conn.query("SELECT COUNT(*) AS n FROM usertable", &[]).unwrap().get_int(0, "n").unwrap();
        assert_eq!(after, before + 10);
    }

    #[test]
    fn weights_sum_to_100() {
        let w = Ycsb::new();
        let sum: f64 = w.default_weights().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_keys_skewed() {
        let (w, _) = setup();
        let mut rng = Rng::new(4);
        let head = (0..10_000).filter(|_| w.key(&mut rng) < 10).count();
        assert!(head > 1_000, "zipf head share too small: {head}");
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                let sql = cat.resolve(name, d).unwrap();
                bp_sql::parse(&sql).unwrap_or_else(|e| panic!("{name}/{d:?}: {e}"));
            }
        }
    }
}
