//! CH-benCHmark: the mixed OLTP + OLAP benchmark (Table 1, Transactional,
//! "Mixture of OLTP and OLAP").
//!
//! Runs the five TPC-C transactions alongside TPC-H-style analytic queries
//! over the same (slightly extended) schema. The analytic queries here are
//! Q1-, Q4-, Q6- and Q12-flavored, rewritten for the supported SQL subset;
//! they produce the OLTP/OLAP interference the benchmark exists to measure.

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_i, p_s, run_txn};
use crate::tpcc::Tpcc;

const NATIONS: i64 = 25;
const SUPPLIERS: i64 = 50;

pub struct ChBenchmark {
    tpcc: Tpcc,
}

impl Default for ChBenchmark {
    fn default() -> Self {
        ChBenchmark::new()
    }
}

impl ChBenchmark {
    pub fn new() -> ChBenchmark {
        ChBenchmark { tpcc: Tpcc::new() }
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_region",
        "CREATE TABLE region (r_id INT PRIMARY KEY, r_name VARCHAR(32) NOT NULL)",
    );
    cat.define(
        "create_nation",
        "CREATE TABLE nation (n_id INT PRIMARY KEY, n_name VARCHAR(32) NOT NULL, n_r_id INT NOT NULL)",
    );
    cat.define(
        "create_supplier",
        "CREATE TABLE supplier (su_id INT PRIMARY KEY, su_name VARCHAR(32) NOT NULL, su_n_id INT NOT NULL)",
    );
    cat.define(
        "q1",
        "SELECT ol_number, SUM(ol_quantity) AS sum_qty, SUM(ol_amount) AS sum_amount, \
         AVG(ol_quantity) AS avg_qty, COUNT(*) AS count_order \
         FROM order_line WHERE ol_o_id > ? GROUP BY ol_number ORDER BY ol_number",
    );
    cat.define(
        "q4",
        "SELECT o_ol_cnt, COUNT(*) AS order_count FROM orders \
         WHERE o_entry_d >= ? GROUP BY o_ol_cnt ORDER BY o_ol_cnt",
    );
    cat.define(
        "q6",
        "SELECT SUM(ol_amount) AS revenue FROM order_line \
         WHERE ol_quantity BETWEEN ? AND ? AND ol_amount > ?",
    );
    cat.define(
        "q12",
        "SELECT o.o_ol_cnt, COUNT(*) AS line_count FROM orders o \
         JOIN order_line ol ON o.o_id = ol.ol_o_id \
         WHERE o.o_w_id = ? AND ol.ol_w_id = ? AND o.o_d_id = ol.ol_d_id \
         GROUP BY o.o_ol_cnt ORDER BY o.o_ol_cnt",
    );
    cat
}

impl Workload for ChBenchmark {
    fn name(&self) -> &'static str {
        "chbenchmark"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::Transactional
    }

    fn domain(&self) -> &'static str {
        "Mixture of OLTP and OLAP"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        let mut types: Vec<TransactionType> = self
            .tpcc
            .transaction_types()
            .into_iter()
            .map(|mut t| {
                t.default_weight *= 0.88; // leave 12% for the analytic side
                t
            })
            .collect();
        types.push(TransactionType::new("Q1", 3.0, true).with_cost(8.0));
        types.push(TransactionType::new("Q4", 3.0, true).with_cost(6.0));
        types.push(TransactionType::new("Q6", 3.0, true).with_cost(6.0));
        types.push(TransactionType::new("Q12", 3.0, true).with_cost(10.0));
        types
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        self.tpcc.create_schema(conn)?;
        let cat = catalog();
        for stmt in ["create_region", "create_nation", "create_supplier"] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let base = self.tpcc.load(conn, scale, rng)?;
        for r in 0..5 {
            conn.execute("INSERT INTO region VALUES (?, ?)", &[p_i(r), p_s(rng.astring(5, 20))])?;
        }
        for n in 0..NATIONS {
            conn.execute(
                "INSERT INTO nation VALUES (?, ?, ?)",
                &[p_i(n), p_s(rng.astring(5, 20)), p_i(rng.int_range(0, 4))],
            )?;
        }
        for s in 0..SUPPLIERS {
            conn.execute(
                "INSERT INTO supplier VALUES (?, ?, ?)",
                &[p_i(s), p_s(rng.astring(5, 20)), p_i(rng.int_range(0, NATIONS - 1))],
            )?;
        }
        Ok(LoadSummary {
            tables: base.tables + 3,
            rows: base.rows + 5 + NATIONS as u64 + SUPPLIERS as u64,
        })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        match txn_idx {
            0..=4 => self.tpcc.execute(txn_idx, conn, rng),
            // Q1: pricing summary over recent order lines.
            5 => {
                let cutoff = rng.int_range(0, 10);
                run_txn(conn, |c| {
                    c.query(
                        "SELECT ol_number, SUM(ol_quantity) AS sum_qty, SUM(ol_amount) AS sum_amount, \
                         AVG(ol_quantity) AS avg_qty, COUNT(*) AS count_order \
                         FROM order_line WHERE ol_o_id > ? GROUP BY ol_number ORDER BY ol_number",
                        &[p_i(cutoff)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // Q4: order-priority checking.
            6 => {
                let since = rng.int_range(0, 20);
                run_txn(conn, |c| {
                    c.query(
                        "SELECT o_ol_cnt, COUNT(*) AS order_count FROM orders \
                         WHERE o_entry_d >= ? GROUP BY o_ol_cnt ORDER BY o_ol_cnt",
                        &[p_i(since)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // Q6: revenue forecast.
            7 => run_txn(conn, |c| {
                c.query(
                    "SELECT SUM(ol_amount) AS revenue FROM order_line \
                     WHERE ol_quantity BETWEEN ? AND ? AND ol_amount > ?",
                    &[p_i(1), p_i(10), p_i(100)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            // Q12: shipping-mode / order-priority join.
            8 => run_txn(conn, |c| {
                c.query(
                    "SELECT o.o_ol_cnt, COUNT(*) AS line_count FROM orders o \
                     JOIN order_line ol ON o.o_id = ol.ol_o_id \
                     WHERE o.o_w_id = ? AND ol.ol_w_id = ? AND o.o_d_id = ol.ol_d_id \
                     GROUP BY o.o_ol_cnt ORDER BY o.o_ol_cnt",
                    &[p_i(1), p_i(1)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            other => panic!("chbenchmark has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (ChBenchmark, Connection) {
        let db = Database::new(Personality::test());
        let w = ChBenchmark::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 1.0, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..9 {
            for _ in 0..3 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn q1_returns_grouped_rows() {
        let (_, mut conn) = setup();
        let rs = conn
            .query(
                "SELECT ol_number, COUNT(*) AS count_order FROM order_line \
                 WHERE ol_o_id > 0 GROUP BY ol_number ORDER BY ol_number",
                &[],
            )
            .unwrap();
        assert!(rs.len() >= 5, "groups {}", rs.len());
        // ol_number 1 exists for every order.
        assert_eq!(rs.get_int(0, "ol_number"), Some(1));
    }

    #[test]
    fn q6_revenue_positive() {
        let (_, mut conn) = setup();
        let rs = conn
            .query(
                "SELECT SUM(ol_amount) AS revenue FROM order_line WHERE ol_quantity BETWEEN 1 AND 10 AND ol_amount > 100",
                &[],
            )
            .unwrap();
        assert!(rs.get_f64(0, "revenue").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn mixture_is_88_percent_tpcc() {
        let w = ChBenchmark::new();
        let weights = w.default_weights();
        let tpcc_share: f64 = weights[..5].iter().sum();
        let olap_share: f64 = weights[5..].iter().sum();
        assert!((tpcc_share - 88.0).abs() < 1e-9);
        assert!((olap_share - 12.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
