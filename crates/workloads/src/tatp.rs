//! TATP: the Telecom Application Transaction Processing benchmark
//! ("Caller Location App", Table 1, Transactional).
//!
//! Subscriber / access-info / special-facility / call-forwarding tables
//! with the canonical 7-transaction mix (80% reads, 20% writes).

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_i, p_s, run_txn};

const BASE_SUBSCRIBERS: i64 = 1_000;

pub struct Tatp {
    subscribers: AtomicI64,
}

impl Default for Tatp {
    fn default() -> Self {
        Tatp::new()
    }
}

impl Tatp {
    pub fn new() -> Tatp {
        Tatp { subscribers: AtomicI64::new(BASE_SUBSCRIBERS) }
    }

    fn sid(&self, rng: &mut Rng) -> i64 {
        rng.int_range(1, self.subscribers.load(Ordering::Relaxed).max(1))
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_subscriber",
        "CREATE TABLE subscriber (s_id INT PRIMARY KEY, sub_nbr VARCHAR(15) NOT NULL, \
         bit_1 INT, hex_1 INT, byte2_1 INT, msc_location INT, vlr_location INT)",
    );
    cat.define("create_subscriber_nbr_idx", "CREATE UNIQUE INDEX idx_sub_nbr ON subscriber (sub_nbr)");
    cat.define(
        "create_access_info",
        "CREATE TABLE access_info (s_id INT NOT NULL, ai_type INT NOT NULL, \
         data1 INT, data2 INT, data3 VARCHAR(3), data4 VARCHAR(5), PRIMARY KEY (s_id, ai_type))",
    );
    cat.define(
        "create_special_facility",
        "CREATE TABLE special_facility (s_id INT NOT NULL, sf_type INT NOT NULL, \
         is_active INT NOT NULL, error_cntrl INT, data_a INT, data_b VARCHAR(5), \
         PRIMARY KEY (s_id, sf_type))",
    );
    cat.define(
        "create_call_forwarding",
        "CREATE TABLE call_forwarding (s_id INT NOT NULL, sf_type INT NOT NULL, \
         start_time INT NOT NULL, end_time INT, numberx VARCHAR(15), \
         PRIMARY KEY (s_id, sf_type, start_time))",
    );
    cat.define("get_subscriber", "SELECT * FROM subscriber WHERE s_id = ?");
    cat.define(
        "get_new_destination",
        "SELECT cf.numberx FROM special_facility sf JOIN call_forwarding cf \
         ON sf.s_id = cf.s_id WHERE sf.s_id = ? AND sf.sf_type = ? AND sf.is_active = 1 \
         AND cf.sf_type = ? AND cf.start_time <= ? AND cf.end_time > ?",
    );
    cat.define(
        "get_access_data",
        "SELECT data1, data2, data3, data4 FROM access_info WHERE s_id = ? AND ai_type = ?",
    );
    cat.define(
        "update_subscriber_bit",
        "UPDATE subscriber SET bit_1 = ? WHERE s_id = ?",
    );
    cat.define(
        "update_special_facility",
        "UPDATE special_facility SET data_a = ? WHERE s_id = ? AND sf_type = ?",
    );
    cat.define(
        "update_location",
        "UPDATE subscriber SET vlr_location = ? WHERE sub_nbr = ?",
    );
    cat.define(
        "insert_call_forwarding",
        "INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
    );
    cat.define(
        "delete_call_forwarding",
        "DELETE FROM call_forwarding WHERE s_id = ? AND sf_type = ? AND start_time = ?",
    );
    cat
}

fn sub_nbr(s_id: i64) -> String {
    format!("{s_id:015}")
}

impl Workload for Tatp {
    fn name(&self) -> &'static str {
        "tatp"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::Transactional
    }

    fn domain(&self) -> &'static str {
        "Caller Location App"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("GetSubscriberData", 35.0, true),
            TransactionType::new("GetNewDestination", 10.0, true),
            TransactionType::new("GetAccessData", 35.0, true),
            TransactionType::new("UpdateSubscriberData", 2.0, false),
            TransactionType::new("UpdateLocation", 14.0, false),
            TransactionType::new("InsertCallForwarding", 2.0, false),
            TransactionType::new("DeleteCallForwarding", 2.0, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_subscriber",
            "create_subscriber_nbr_idx",
            "create_access_info",
            "create_special_facility",
            "create_call_forwarding",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let n = ((BASE_SUBSCRIBERS as f64 * scale) as i64).max(10);
        let mut rows = 0u64;
        for s in 1..=n {
            conn.execute(
                "INSERT INTO subscriber VALUES (?, ?, ?, ?, ?, ?, ?)",
                &[
                    p_i(s),
                    p_s(sub_nbr(s)),
                    p_i(rng.int_range(0, 1)),
                    p_i(rng.int_range(0, 15)),
                    p_i(rng.int_range(0, 255)),
                    p_i(rng.int_range(0, i32::MAX as i64)),
                    p_i(rng.int_range(0, i32::MAX as i64)),
                ],
            )?;
            rows += 1;
            // 1-4 access-info rows.
            for ai in 1..=rng.int_range(1, 4) {
                conn.execute(
                    "INSERT INTO access_info VALUES (?, ?, ?, ?, ?, ?)",
                    &[
                        p_i(s),
                        p_i(ai),
                        p_i(rng.int_range(0, 255)),
                        p_i(rng.int_range(0, 255)),
                        p_s(rng.astring(3, 3)),
                        p_s(rng.astring(5, 5)),
                    ],
                )?;
                rows += 1;
            }
            // 1-4 special facilities, each with 0-3 call forwardings.
            for sf in 1..=rng.int_range(1, 4) {
                conn.execute(
                    "INSERT INTO special_facility VALUES (?, ?, ?, ?, ?, ?)",
                    &[
                        p_i(s),
                        p_i(sf),
                        p_i(if rng.bool_with(0.85) { 1 } else { 0 }),
                        p_i(rng.int_range(0, 255)),
                        p_i(rng.int_range(0, 255)),
                        p_s(rng.astring(5, 5)),
                    ],
                )?;
                rows += 1;
                for start in [0i64, 8, 16].iter().take(rng.int_range(0, 3) as usize) {
                    conn.execute(
                        "INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
                        &[
                            p_i(s),
                            p_i(sf),
                            p_i(*start),
                            p_i(*start + 8),
                            p_s(sub_nbr(rng.int_range(1, n))),
                        ],
                    )?;
                    rows += 1;
                }
            }
        }
        self.subscribers.store(n, Ordering::Relaxed);
        Ok(LoadSummary { tables: 4, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let s = self.sid(rng);
        match txn_idx {
            0 => run_txn(conn, |c| {
                c.query("SELECT * FROM subscriber WHERE s_id = ?", &[p_i(s)])?;
                Ok(TxnOutcome::Committed)
            }),
            1 => {
                let sf = p_i(rng.int_range(1, 4));
                let time = p_i(rng.int_range(0, 23));
                run_txn(conn, |c| {
                    let rs = c.query(
                        "SELECT cf.numberx FROM special_facility sf JOIN call_forwarding cf \
                         ON sf.s_id = cf.s_id WHERE sf.s_id = ? AND sf.sf_type = ? AND sf.is_active = 1 \
                         AND cf.sf_type = ? AND cf.start_time <= ? AND cf.end_time > ?",
                        &[p_i(s), sf.clone(), sf.clone(), time.clone(), time.clone()],
                    )?;
                    Ok(if rs.is_empty() { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            2 => {
                let ai = p_i(rng.int_range(1, 4));
                run_txn(conn, |c| {
                    let rs = c.query(
                        "SELECT data1, data2, data3, data4 FROM access_info WHERE s_id = ? AND ai_type = ?",
                        &[p_i(s), ai],
                    )?;
                    Ok(if rs.is_empty() { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            3 => {
                let bit = p_i(rng.int_range(0, 1));
                let data_a = p_i(rng.int_range(0, 255));
                let sf = p_i(rng.int_range(1, 4));
                run_txn(conn, |c| {
                    c.execute("UPDATE subscriber SET bit_1 = ? WHERE s_id = ?", &[bit, p_i(s)])?;
                    let n = c
                        .execute(
                            "UPDATE special_facility SET data_a = ? WHERE s_id = ? AND sf_type = ?",
                            &[data_a, p_i(s), sf],
                        )?
                        .affected();
                    Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            4 => {
                let loc = p_i(rng.int_range(0, i32::MAX as i64));
                run_txn(conn, |c| {
                    c.execute(
                        "UPDATE subscriber SET vlr_location = ? WHERE sub_nbr = ?",
                        &[loc, p_s(sub_nbr(s))],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            5 => {
                let sf = rng.int_range(1, 4);
                let start = *rng.choose(&[0i64, 8, 16]);
                run_txn(conn, |c| {
                    let active = c.query(
                        "SELECT sf_type FROM special_facility WHERE s_id = ? AND sf_type = ?",
                        &[p_i(s), p_i(sf)],
                    )?;
                    if active.is_empty() {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    match c.execute(
                        "INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
                        &[p_i(s), p_i(sf), p_i(start), p_i(start + 8), p_s(sub_nbr(s))],
                    ) {
                        Ok(_) => Ok(TxnOutcome::Committed),
                        // Duplicate key: the TATP spec expects this as a
                        // benchmark-level abort.
                        Err(bp_sql::SqlError::Storage(bp_storage::StorageError::DuplicateKey { .. })) => {
                            Ok(TxnOutcome::UserAborted)
                        }
                        Err(e) => Err(e),
                    }
                })
            }
            6 => {
                let sf = p_i(rng.int_range(1, 4));
                let start = p_i(*rng.choose(&[0i64, 8, 16]));
                run_txn(conn, |c| {
                    let n = c
                        .execute(
                            "DELETE FROM call_forwarding WHERE s_id = ? AND sf_type = ? AND start_time = ?",
                            &[p_i(s), sf, start],
                        )?
                        .affected();
                    Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            other => panic!("tatp has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Tatp, Connection) {
        let db = Database::new(Personality::test());
        let w = Tatp::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.1, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..7 {
            for _ in 0..20 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn weights_sum_to_100() {
        let w = Tatp::new();
        assert!((w.default_weights().iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn update_location_by_secondary_index() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        for _ in 0..10 {
            assert_eq!(w.execute(4, &mut conn, &mut rng).unwrap(), TxnOutcome::Committed);
        }
    }

    #[test]
    fn insert_then_delete_call_forwarding() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(4);
        let mut committed_insert = false;
        let mut committed_delete = false;
        for _ in 0..200 {
            if w.execute(5, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                committed_insert = true;
            }
            if w.execute(6, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                committed_delete = true;
            }
        }
        assert!(committed_insert && committed_delete);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
