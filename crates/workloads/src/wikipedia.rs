//! Wikipedia: the on-line encyclopedia workload (Table 1, Web-Oriented),
//! based on the MediaWiki schema and the published request mix: page reads
//! dominate, edits create a new revision + text and touch watchlists.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::{Rng, Zipf};

use crate::helpers::{p_i, p_s, run_txn};

const BASE_PAGES: i64 = 300;
const BASE_USERS: i64 = 100;

pub struct Wikipedia {
    pages: AtomicI64,
    users: AtomicI64,
    next_rev: AtomicI64,
    page_zipf: Zipf,
}

impl Default for Wikipedia {
    fn default() -> Self {
        Wikipedia::new()
    }
}

impl Wikipedia {
    pub fn new() -> Wikipedia {
        Wikipedia {
            pages: AtomicI64::new(BASE_PAGES),
            users: AtomicI64::new(BASE_USERS),
            next_rev: AtomicI64::new(BASE_PAGES),
            page_zipf: Zipf::new(BASE_PAGES as u64, 0.8),
        }
    }

    fn page(&self, rng: &mut Rng) -> i64 {
        let n = self.pages.load(Ordering::Relaxed).max(1) as u64;
        (self.page_zipf.sample(rng) % n) as i64
    }

    fn user(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.users.load(Ordering::Relaxed).max(1) - 1)
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_useracct",
        "CREATE TABLE wp_user (user_id INT PRIMARY KEY, user_name VARCHAR(32) NOT NULL, \
         user_touched INT)",
    );
    cat.define(
        "create_page",
        "CREATE TABLE page (page_id INT PRIMARY KEY, page_title VARCHAR(64) NOT NULL, \
         page_latest INT NOT NULL, page_touched INT)",
    );
    cat.define("create_page_title_idx", "CREATE UNIQUE INDEX idx_page_title ON page (page_title)");
    cat.define(
        "create_revision",
        "CREATE TABLE revision (rev_id INT PRIMARY KEY, rev_page INT NOT NULL, rev_text_id INT NOT NULL, \
         rev_user INT, rev_timestamp INT)",
    );
    cat.define("create_revision_page_idx", "CREATE INDEX idx_rev_page ON revision (rev_page)");
    cat.define(
        "create_text",
        "CREATE TABLE wp_text (old_id INT PRIMARY KEY, old_text VARCHAR(4096) NOT NULL)",
    );
    cat.define(
        "create_watchlist",
        "CREATE TABLE watchlist (wl_user INT NOT NULL, wl_page INT NOT NULL, PRIMARY KEY (wl_user, wl_page))",
    );
    cat.define("select_page", "SELECT * FROM page WHERE page_id = ?");
    cat.define(
        "select_page_revision",
        "SELECT r.rev_id, t.old_text FROM revision r JOIN wp_text t ON r.rev_text_id = t.old_id \
         WHERE r.rev_id = ?",
    );
    cat.define("select_watchlist", "SELECT wl_page FROM watchlist WHERE wl_user = ? LIMIT 50");
    cat.define("insert_watchlist", "INSERT INTO watchlist VALUES (?, ?)");
    cat.define("delete_watchlist", "DELETE FROM watchlist WHERE wl_user = ? AND wl_page = ?");
    cat.define("insert_text", "INSERT INTO wp_text VALUES (?, ?)");
    cat.define("insert_revision", "INSERT INTO revision VALUES (?, ?, ?, ?, ?)");
    cat.define(
        "update_page_latest",
        "UPDATE page SET page_latest = ?, page_touched = ? WHERE page_id = ?",
    );
    cat
}

impl Workload for Wikipedia {
    fn name(&self) -> &'static str {
        "wikipedia"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::WebOriented
    }

    fn domain(&self) -> &'static str {
        "On-line Encyclopedia"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        // Published trace mix (rounded to one decimal).
        vec![
            TransactionType::new("GetPageAnonymous", 92.1, true),
            TransactionType::new("GetPageAuthenticated", 7.1, true),
            TransactionType::new("AddWatchList", 0.3, false),
            TransactionType::new("RemoveWatchList", 0.2, false),
            TransactionType::new("UpdatePage", 0.3, false).with_cost(2.5),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_useracct",
            "create_page",
            "create_page_title_idx",
            "create_revision",
            "create_revision_page_idx",
            "create_text",
            "create_watchlist",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let users = ((BASE_USERS as f64 * scale) as i64).max(5);
        let pages = ((BASE_PAGES as f64 * scale) as i64).max(10);
        let mut rows = 0u64;
        for u in 0..users {
            conn.execute(
                "INSERT INTO wp_user VALUES (?, ?, ?)",
                &[p_i(u), p_s(format!("user_{u}")), p_i(0)],
            )?;
            rows += 1;
        }
        for p in 0..pages {
            conn.execute(
                "INSERT INTO wp_text VALUES (?, ?)",
                &[p_i(p), p_s(bp_util::text::text(rng, 400))],
            )?;
            conn.execute(
                "INSERT INTO revision VALUES (?, ?, ?, ?, ?)",
                &[p_i(p), p_i(p), p_i(p), p_i(rng.int_range(0, users - 1)), p_i(0)],
            )?;
            conn.execute(
                "INSERT INTO page VALUES (?, ?, ?, ?)",
                &[p_i(p), p_s(format!("Page_{p}")), p_i(p), p_i(0)],
            )?;
            rows += 3;
        }
        for u in 0..users {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.int_range(0, 10) {
                let pg = rng.int_range(0, pages - 1);
                if seen.insert(pg) {
                    conn.execute("INSERT INTO watchlist VALUES (?, ?)", &[p_i(u), p_i(pg)])?;
                    rows += 1;
                }
            }
        }
        self.users.store(users, Ordering::Relaxed);
        self.pages.store(pages, Ordering::Relaxed);
        self.next_rev.store(pages, Ordering::Relaxed);
        Ok(LoadSummary { tables: 5, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let page = self.page(rng);
        let user = self.user(rng);
        match txn_idx {
            // GetPageAnonymous: page -> latest revision -> text.
            0 => run_txn(conn, |c| {
                let rs = c.query("SELECT page_latest FROM page WHERE page_id = ?", &[p_i(page)])?;
                let Some(rev) = rs.get_int(0, "page_latest") else {
                    return Ok(TxnOutcome::UserAborted);
                };
                c.query(
                    "SELECT r.rev_id, t.old_text FROM revision r JOIN wp_text t \
                     ON r.rev_text_id = t.old_id WHERE r.rev_id = ?",
                    &[p_i(rev)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            // GetPageAuthenticated: also touches the user + their watchlist.
            1 => run_txn(conn, |c| {
                c.query("SELECT * FROM wp_user WHERE user_id = ?", &[p_i(user)])?;
                c.query("SELECT wl_page FROM watchlist WHERE wl_user = ? LIMIT 50", &[p_i(user)])?;
                let rs = c.query("SELECT page_latest FROM page WHERE page_id = ?", &[p_i(page)])?;
                if let Some(rev) = rs.get_int(0, "page_latest") {
                    c.query(
                        "SELECT r.rev_id, t.old_text FROM revision r JOIN wp_text t \
                         ON r.rev_text_id = t.old_id WHERE r.rev_id = ?",
                        &[p_i(rev)],
                    )?;
                }
                Ok(TxnOutcome::Committed)
            }),
            2 => run_txn(conn, |c| {
                match c.execute("INSERT INTO watchlist VALUES (?, ?)", &[p_i(user), p_i(page)]) {
                    Ok(_) => Ok(TxnOutcome::Committed),
                    Err(bp_sql::SqlError::Storage(bp_storage::StorageError::DuplicateKey { .. })) => {
                        Ok(TxnOutcome::UserAborted)
                    }
                    Err(e) => Err(e),
                }
            }),
            3 => run_txn(conn, |c| {
                let n = c
                    .execute(
                        "DELETE FROM watchlist WHERE wl_user = ? AND wl_page = ?",
                        &[p_i(user), p_i(page)],
                    )?
                    .affected();
                Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
            }),
            // UpdatePage: new text + new revision + bump page_latest.
            4 => {
                let rev = self.next_rev.fetch_add(1, Ordering::Relaxed);
                let body = bp_util::text::text(rng, 400);
                run_txn(conn, |c| {
                    let exists = c.query("SELECT page_id FROM page WHERE page_id = ? FOR UPDATE", &[p_i(page)])?;
                    if exists.is_empty() {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    c.execute("INSERT INTO wp_text VALUES (?, ?)", &[p_i(rev), p_s(body.clone())])?;
                    c.execute(
                        "INSERT INTO revision VALUES (?, ?, ?, ?, ?)",
                        &[p_i(rev), p_i(page), p_i(rev), p_i(user), p_i(rev)],
                    )?;
                    c.execute(
                        "UPDATE page SET page_latest = ?, page_touched = ? WHERE page_id = ?",
                        &[p_i(rev), p_i(rev), p_i(page)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            other => panic!("wikipedia has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Wikipedia, Connection) {
        let db = Database::new(Personality::test());
        let w = Wikipedia::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..5 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn update_page_creates_revision_chain() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        let revs_before = conn.query("SELECT COUNT(*) AS n FROM revision", &[]).unwrap().get_int(0, "n").unwrap();
        let mut edits = 0;
        for _ in 0..20 {
            if w.execute(4, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                edits += 1;
            }
        }
        let revs_after = conn.query("SELECT COUNT(*) AS n FROM revision", &[]).unwrap().get_int(0, "n").unwrap();
        assert_eq!(revs_after - revs_before, edits);
        // page_latest always points at an existing revision.
        let joined = conn
            .query(
                "SELECT COUNT(*) AS n FROM page p JOIN revision r ON p.page_latest = r.rev_id",
                &[],
            )
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        let pages = conn.query("SELECT COUNT(*) AS n FROM page", &[]).unwrap().get_int(0, "n").unwrap();
        assert_eq!(joined, pages);
    }

    #[test]
    fn reads_dominate_mix() {
        let w = Wikipedia::new();
        let types = w.transaction_types();
        let ro: f64 = types.iter().filter(|t| t.read_only).map(|t| t.default_weight).sum();
        let total: f64 = types.iter().map(|t| t.default_weight).sum();
        assert!(ro / total > 0.98);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
