//! ResourceStresser: the isolated-resource stress benchmark (Table 1,
//! Feature Testing). Each transaction type stresses one server resource in
//! isolation: CPU (expensive in-transaction computation), disk IO (large
//! scattered writes), and lock contention (hot-row updates).

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_i, p_s, run_txn};

const IO_ROWS: i64 = 1_000;
const LOCK_ROWS: i64 = 10;
const CPU_ROWS: i64 = 50;

pub struct ResourceStresser {
    io_rows: AtomicI64,
}

impl Default for ResourceStresser {
    fn default() -> Self {
        ResourceStresser::new()
    }
}

impl ResourceStresser {
    pub fn new() -> ResourceStresser {
        ResourceStresser { io_rows: AtomicI64::new(IO_ROWS) }
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_iotable",
        "CREATE TABLE iotable (id INT PRIMARY KEY, data VARCHAR(255) NOT NULL)",
    );
    cat.define(
        "create_cputable",
        "CREATE TABLE cputable (id INT PRIMARY KEY, seed INT NOT NULL)",
    );
    cat.define(
        "create_locktable",
        "CREATE TABLE locktable (id INT PRIMARY KEY, counter INT NOT NULL)",
    );
    cat.define("io_read", "SELECT data FROM iotable WHERE id >= ? AND id < ?");
    cat.define("io_write", "UPDATE iotable SET data = ? WHERE id = ?");
    cat.define("cpu_read", "SELECT seed FROM cputable WHERE id = ?");
    cat.define("lock_bump", "UPDATE locktable SET counter = counter + 1 WHERE id = ?");
    cat
}

/// Deliberately CPU-heavy pure computation (iterated mixing).
fn burn_cpu(seed: i64, rounds: u32) -> u64 {
    let mut acc = seed as u64 ^ 0x9E37_79B9_7F4A_7C15;
    for _ in 0..rounds {
        acc = bp_util::rng::mix64(acc);
    }
    acc
}

impl Workload for ResourceStresser {
    fn name(&self) -> &'static str {
        "resourcestresser"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::FeatureTesting
    }

    fn domain(&self) -> &'static str {
        "Isolated Resource Stresser"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("CPU1", 17.0, true).with_cost(3.0),
            TransactionType::new("CPU2", 17.0, true).with_cost(5.0),
            TransactionType::new("IO1", 17.0, true).with_cost(4.0),
            TransactionType::new("IO2", 17.0, false).with_cost(4.0),
            TransactionType::new("Contention1", 16.0, false).with_cost(1.0),
            TransactionType::new("Contention2", 16.0, false).with_cost(2.0),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in ["create_iotable", "create_cputable", "create_locktable"] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let io = ((IO_ROWS as f64 * scale) as i64).max(100);
        for i in 0..io {
            conn.execute(
                "INSERT INTO iotable VALUES (?, ?)",
                &[p_i(i), p_s(rng.astring(100, 255))],
            )?;
        }
        for i in 0..CPU_ROWS {
            conn.execute(
                "INSERT INTO cputable VALUES (?, ?)",
                &[p_i(i), p_i(rng.int_range(1, 1_000_000))],
            )?;
        }
        for i in 0..LOCK_ROWS {
            conn.execute("INSERT INTO locktable VALUES (?, 0)", &[p_i(i)])?;
        }
        self.io_rows.store(io, Ordering::Relaxed);
        Ok(LoadSummary { tables: 3, rows: (io + CPU_ROWS + LOCK_ROWS) as u64 })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let io_rows = self.io_rows.load(Ordering::Relaxed);
        match txn_idx {
            // CPU1/CPU2: small read + heavy computation inside the txn.
            0 | 1 => {
                let id = rng.int_range(0, CPU_ROWS - 1);
                let rounds = if txn_idx == 0 { 2_000 } else { 10_000 };
                run_txn(conn, |c| {
                    let seed = c
                        .query("SELECT seed FROM cputable WHERE id = ?", &[p_i(id)])?
                        .get_int(0, "seed")
                        .unwrap_or(1);
                    let digest = burn_cpu(seed, rounds);
                    // Keep the optimizer honest: the digest flows into a
                    // predicate so the loop cannot be eliminated.
                    if digest == 0 {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    Ok(TxnOutcome::Committed)
                })
            }
            // IO1: read a large contiguous range.
            2 => {
                let start = rng.int_range(0, (io_rows - 100).max(1));
                run_txn(conn, |c| {
                    c.query(
                        "SELECT data FROM iotable WHERE id >= ? AND id < ?",
                        &[p_i(start), p_i(start + 100)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // IO2: scattered writes across many pages.
            3 => {
                let ids: Vec<i64> = (0..10).map(|_| rng.int_range(0, io_rows - 1)).collect();
                let data = rng.astring(100, 255);
                run_txn(conn, |c| {
                    for id in &ids {
                        c.execute(
                            "UPDATE iotable SET data = ? WHERE id = ?",
                            &[p_s(data.clone()), p_i(*id)],
                        )?;
                    }
                    Ok(TxnOutcome::Committed)
                })
            }
            // Contention1: bump a single hot row.
            4 => {
                let id = rng.int_range(0, 1); // two hottest rows
                run_txn(conn, |c| {
                    c.execute("UPDATE locktable SET counter = counter + 1 WHERE id = ?", &[p_i(id)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // Contention2: bump two hot rows in a fixed order.
            5 => {
                let a = rng.int_range(0, LOCK_ROWS - 2);
                let b = a + 1;
                run_txn(conn, |c| {
                    c.execute("UPDATE locktable SET counter = counter + 1 WHERE id = ?", &[p_i(a)])?;
                    c.execute("UPDATE locktable SET counter = counter + 1 WHERE id = ?", &[p_i(b)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            other => panic!("resourcestresser has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (ResourceStresser, Connection) {
        let db = Database::new(Personality::test());
        let w = ResourceStresser::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..6 {
            for _ in 0..5 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn contention_counters_advance() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        for _ in 0..30 {
            w.execute(4, &mut conn, &mut rng).unwrap();
        }
        let total = conn
            .query("SELECT SUM(counter) AS t FROM locktable", &[])
            .unwrap()
            .get_int(0, "t")
            .unwrap();
        assert_eq!(total, 30);
    }

    #[test]
    fn burn_cpu_is_deterministic_and_nonzero() {
        assert_eq!(burn_cpu(42, 1000), burn_cpu(42, 1000));
        assert_ne!(burn_cpu(42, 1000), 0);
        assert_ne!(burn_cpu(42, 1000), burn_cpu(43, 1000));
    }

    #[test]
    fn io_writes_touch_many_rows() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(4);
        let before = conn.database().metrics().snapshot().rows_written;
        for _ in 0..5 {
            w.execute(3, &mut conn, &mut rng).unwrap();
        }
        let after = conn.database().metrics().snapshot().rows_written;
        assert!(after - before >= 40, "only {} rows written", after - before);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
