//! `bp-workloads`: the 15 benchmarks bundled with the testbed (Table 1 of
//! the paper), each implemented as transaction control code over the SQL
//! connection layer, with a per-benchmark statement catalog for the
//! SQL-dialect management layer.

pub mod auctionmark;
pub mod chbenchmark;
pub mod epinions;
pub mod helpers;
pub mod jpab;
pub mod linkbench;
pub mod registry;
pub mod resourcestresser;
pub mod seats;
pub mod sibench;
pub mod smallbank;
pub mod tatp;
pub mod tpcc;
pub mod twitter;
pub mod voter;
pub mod wikipedia;
pub mod ycsb;

pub use registry::{all_workloads, by_name, catalog_of, table1, Table1Row};
