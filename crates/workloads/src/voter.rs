//! Voter: the talent-show telephone-voting benchmark (Table 1,
//! Transactional). One transaction type (`Vote`) that validates the
//! contestant, enforces the per-phone vote limit, and records the vote —
//! the high-throughput benchmark used throughout the BenchPress demo.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_i, p_s, run_txn};

const NUM_CONTESTANTS: i64 = 12;
const MAX_VOTES_PER_PHONE: i64 = 10;
const BASE_AREA_CODES: i64 = 100;

pub struct Voter {
    vote_id: AtomicI64,
    area_codes: AtomicI64,
}

impl Default for Voter {
    fn default() -> Self {
        Voter::new()
    }
}

impl Voter {
    pub fn new() -> Voter {
        Voter { vote_id: AtomicI64::new(0), area_codes: AtomicI64::new(BASE_AREA_CODES) }
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_contestants",
        "CREATE TABLE contestants (contestant_number INT PRIMARY KEY, contestant_name VARCHAR(50) NOT NULL)",
    );
    cat.define(
        "create_area_code_state",
        "CREATE TABLE area_code_state (area_code INT PRIMARY KEY, state VARCHAR(2) NOT NULL)",
    );
    cat.define(
        "create_votes",
        "CREATE TABLE votes (vote_id INT PRIMARY KEY, phone_number INT NOT NULL, \
         state VARCHAR(2) NOT NULL, contestant_number INT NOT NULL, created INT NOT NULL)",
    );
    cat.define("create_votes_phone_idx", "CREATE INDEX idx_votes_phone ON votes (phone_number)");
    cat.define(
        "check_contestant",
        "SELECT contestant_number FROM contestants WHERE contestant_number = ?",
    );
    cat.define(
        "check_vote_count",
        "SELECT COUNT(*) AS n FROM votes WHERE phone_number = ?",
    );
    cat.define(
        "get_state",
        "SELECT state FROM area_code_state WHERE area_code = ?",
    );
    cat.define(
        "insert_vote",
        "INSERT INTO votes (vote_id, phone_number, state, contestant_number, created) VALUES (?, ?, ?, ?, ?)",
    );
    cat
}

impl Workload for Voter {
    fn name(&self) -> &'static str {
        "voter"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::Transactional
    }

    fn domain(&self) -> &'static str {
        "Talent Show Voting"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![TransactionType::new("Vote", 100.0, false)]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_contestants",
            "create_area_code_state",
            "create_votes",
            "create_votes_phone_idx",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        const NAMES: [&str; 12] = [
            "Edwina Burnam", "Tabatha Gehling", "Kelly Clauss", "Jessie Alloway",
            "Alana Bregman", "Jessie Eichman", "Allie Rogalski", "Nita Coster",
            "Kurt Walser", "Ericka Dieter", "Loraine Nygren", "Tania Mattioli",
        ];
        for (i, name) in NAMES.iter().enumerate() {
            conn.execute(
                "INSERT INTO contestants VALUES (?, ?)",
                &[p_i(i as i64 + 1), p_s(*name)],
            )?;
        }
        let areas = ((BASE_AREA_CODES as f64 * scale) as i64).max(10);
        for code in 0..areas {
            conn.execute(
                "INSERT INTO area_code_state VALUES (?, ?)",
                &[p_i(200 + code), p_s(bp_util::text::state(rng))],
            )?;
        }
        self.area_codes.store(areas, Ordering::Relaxed);
        Ok(LoadSummary { tables: 3, rows: (NAMES.len() as i64 + areas) as u64 })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        assert_eq!(txn_idx, 0, "voter has a single transaction type");
        let areas = self.area_codes.load(Ordering::Relaxed).max(1);
        let area_code = 200 + rng.int_range(0, areas - 1);
        let phone = area_code * 10_000_000 + rng.int_range(0, 9_999_999);
        // A small probability of an invalid contestant exercises the
        // user-abort path, like the original benchmark.
        let contestant = if rng.bool_with(0.001) {
            999
        } else {
            rng.int_range(1, NUM_CONTESTANTS)
        };
        let vote_id = self.vote_id.fetch_add(1, Ordering::Relaxed);

        run_txn(conn, |c| {
            let found = c.query(
                "SELECT contestant_number FROM contestants WHERE contestant_number = ?",
                &[p_i(contestant)],
            )?;
            if found.is_empty() {
                return Ok(TxnOutcome::UserAborted);
            }
            let votes = c
                .query(
                    "SELECT COUNT(*) AS n FROM votes WHERE phone_number = ?",
                    &[p_i(phone)],
                )?
                .get_int(0, "n")
                .unwrap_or(0);
            if votes >= MAX_VOTES_PER_PHONE {
                return Ok(TxnOutcome::UserAborted);
            }
            let state = c
                .query(
                    "SELECT state FROM area_code_state WHERE area_code = ?",
                    &[p_i(area_code)],
                )?
                .get_str(0, "state")
                .unwrap_or("XX")
                .to_string();
            c.execute(
                "INSERT INTO votes (vote_id, phone_number, state, contestant_number, created) VALUES (?, ?, ?, ?, ?)",
                &[p_i(vote_id), p_i(phone), p_s(state), p_i(contestant), p_i(0)],
            )?;
            Ok(TxnOutcome::Committed)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Voter, Connection) {
        let db = Database::new(Personality::test());
        let w = Voter::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 1.0, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn contestants_loaded() {
        let (_, mut conn) = setup();
        let n = conn
            .query("SELECT COUNT(*) AS n FROM contestants", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert_eq!(n, 12);
    }

    #[test]
    fn votes_accumulate() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        let mut committed = 0;
        for _ in 0..200 {
            if w.execute(0, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                committed += 1;
            }
        }
        let n = conn
            .query("SELECT COUNT(*) AS n FROM votes", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert_eq!(n, committed);
        assert!(committed > 150);
    }

    #[test]
    fn votes_reference_valid_contestants() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            w.execute(0, &mut conn, &mut rng).unwrap();
        }
        let rs = conn
            .query(
                "SELECT COUNT(*) AS n FROM votes WHERE contestant_number < 1 OR contestant_number > 12",
                &[],
            )
            .unwrap();
        assert_eq!(rs.get_int(0, "n"), Some(0));
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                let sql = cat.resolve(name, d).unwrap();
                bp_sql::parse(&sql).unwrap_or_else(|e| panic!("{name}/{d:?}: {e}"));
            }
        }
    }
}
