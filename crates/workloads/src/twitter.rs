//! Twitter: the micro-blogging workload (Table 1, Web-Oriented), modeled on
//! an anonymized production trace's operation mix: almost all traffic reads
//! tweets and timelines, with a trickle of new tweets.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::{Rng, Zipf};

use crate::helpers::{p_i, p_s, run_txn};

const BASE_USERS: i64 = 300;
const TWEETS_PER_USER: i64 = 10;
const FOLLOWS_PER_USER: i64 = 8;

pub struct Twitter {
    users: AtomicI64,
    next_tweet: AtomicI64,
    user_zipf: Zipf,
}

impl Default for Twitter {
    fn default() -> Self {
        Twitter::new()
    }
}

impl Twitter {
    pub fn new() -> Twitter {
        Twitter {
            users: AtomicI64::new(BASE_USERS),
            next_tweet: AtomicI64::new(BASE_USERS * TWEETS_PER_USER),
            user_zipf: Zipf::new(BASE_USERS as u64, 0.8),
        }
    }

    /// Zipfian user choice: celebrity accounts get most traffic.
    fn user(&self, rng: &mut Rng) -> i64 {
        let n = self.users.load(Ordering::Relaxed).max(1) as u64;
        (self.user_zipf.sample(rng) % n) as i64
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_user_profiles",
        "CREATE TABLE user_profiles (uid INT PRIMARY KEY, name VARCHAR(32), followers INT)",
    );
    cat.define(
        "create_followers",
        "CREATE TABLE followers (f1 INT NOT NULL, f2 INT NOT NULL, PRIMARY KEY (f1, f2))",
    );
    cat.define(
        "create_follows",
        "CREATE TABLE follows (f1 INT NOT NULL, f2 INT NOT NULL, PRIMARY KEY (f1, f2))",
    );
    cat.define(
        "create_tweets",
        "CREATE TABLE tweets (id INT PRIMARY KEY, uid INT NOT NULL, text VARCHAR(140) NOT NULL, \
         createdate INT)",
    );
    cat.define("create_tweets_user_idx", "CREATE INDEX idx_tweets_uid ON tweets (uid)");
    cat.define("get_tweet", "SELECT * FROM tweets WHERE id = ?");
    cat.define("get_followers", "SELECT f2 FROM followers WHERE f1 = ? LIMIT 20");
    cat.define("get_following", "SELECT f2 FROM follows WHERE f1 = ? LIMIT 20");
    cat.define("get_user_tweets", "SELECT * FROM tweets WHERE uid = ? ORDER BY createdate DESC LIMIT 10");
    cat.define("insert_tweet", "INSERT INTO tweets VALUES (?, ?, ?, ?)");
    cat
}

impl Workload for Twitter {
    fn name(&self) -> &'static str {
        "twitter"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::WebOriented
    }

    fn domain(&self) -> &'static str {
        "Social Networking"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        // Production-trace mix used by OLTP-Bench (rounded).
        vec![
            TransactionType::new("GetTweet", 1.0, true),
            TransactionType::new("GetTweetsFromFollowing", 1.0, true).with_cost(2.0),
            TransactionType::new("GetFollowers", 7.6, true),
            TransactionType::new("GetUserTweets", 89.9, true),
            TransactionType::new("InsertTweet", 0.5, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_user_profiles",
            "create_followers",
            "create_follows",
            "create_tweets",
            "create_tweets_user_idx",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let users = ((BASE_USERS as f64 * scale) as i64).max(10);
        let mut rows = 0u64;
        for u in 0..users {
            conn.execute(
                "INSERT INTO user_profiles VALUES (?, ?, ?)",
                &[p_i(u), p_s(bp_util::text::full_name(rng)), p_i(0)],
            )?;
            rows += 1;
        }
        // Follower graph (both directions materialized, like the original).
        for u in 0..users {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.int_range(1, FOLLOWS_PER_USER) {
                let v = rng.int_range(0, users - 1);
                if v != u && seen.insert(v) {
                    conn.execute("INSERT INTO follows VALUES (?, ?)", &[p_i(u), p_i(v)])?;
                    conn.execute("INSERT INTO followers VALUES (?, ?)", &[p_i(v), p_i(u)])?;
                    rows += 2;
                }
            }
        }
        let mut id = 0;
        for u in 0..users {
            for _ in 0..TWEETS_PER_USER {
                conn.execute(
                    "INSERT INTO tweets VALUES (?, ?, ?, ?)",
                    &[p_i(id), p_i(u), p_s(bp_util::text::text(rng, 100)), p_i(id)],
                )?;
                id += 1;
                rows += 1;
            }
        }
        self.users.store(users, Ordering::Relaxed);
        self.next_tweet.store(id, Ordering::Relaxed);
        Ok(LoadSummary { tables: 4, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let u = self.user(rng);
        match txn_idx {
            0 => {
                let max = self.next_tweet.load(Ordering::Relaxed).max(1);
                let id = rng.int_range(0, max - 1);
                run_txn(conn, |c| {
                    c.query("SELECT * FROM tweets WHERE id = ?", &[p_i(id)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            1 => run_txn(conn, |c| {
                let following = c.query("SELECT f2 FROM follows WHERE f1 = ? LIMIT 20", &[p_i(u)])?;
                for r in 0..following.len().min(5) {
                    let f = following.get_int(r, "f2").unwrap();
                    c.query(
                        "SELECT * FROM tweets WHERE uid = ? ORDER BY createdate DESC LIMIT 5",
                        &[p_i(f)],
                    )?;
                }
                Ok(TxnOutcome::Committed)
            }),
            2 => run_txn(conn, |c| {
                let followers = c.query("SELECT f2 FROM followers WHERE f1 = ? LIMIT 20", &[p_i(u)])?;
                for r in 0..followers.len().min(20) {
                    let f = followers.get_int(r, "f2").unwrap();
                    c.query("SELECT name FROM user_profiles WHERE uid = ?", &[p_i(f)])?;
                }
                Ok(TxnOutcome::Committed)
            }),
            3 => run_txn(conn, |c| {
                c.query(
                    "SELECT * FROM tweets WHERE uid = ? ORDER BY createdate DESC LIMIT 10",
                    &[p_i(u)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            4 => {
                let id = self.next_tweet.fetch_add(1, Ordering::Relaxed);
                let text = bp_util::text::text(rng, 120);
                run_txn(conn, |c| {
                    c.execute(
                        "INSERT INTO tweets VALUES (?, ?, ?, ?)",
                        &[p_i(id), p_i(u), p_s(text.clone()), p_i(id)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            other => panic!("twitter has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Twitter, Connection) {
        let db = Database::new(Personality::test());
        let w = Twitter::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..5 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn insert_tweet_monotonic_ids() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        let before = conn.query("SELECT COUNT(*) AS n FROM tweets", &[]).unwrap().get_int(0, "n").unwrap();
        for _ in 0..20 {
            w.execute(4, &mut conn, &mut rng).unwrap();
        }
        let after = conn.query("SELECT COUNT(*) AS n FROM tweets", &[]).unwrap().get_int(0, "n").unwrap();
        assert_eq!(after - before, 20);
    }

    #[test]
    fn follower_graph_is_symmetric() {
        let (_, mut conn) = setup();
        let follows = conn.query("SELECT COUNT(*) AS n FROM follows", &[]).unwrap().get_int(0, "n").unwrap();
        let followers = conn.query("SELECT COUNT(*) AS n FROM followers", &[]).unwrap().get_int(0, "n").unwrap();
        assert_eq!(follows, followers);
        assert!(follows > 0);
    }

    #[test]
    fn read_mostly_mix() {
        let w = Twitter::new();
        let types = w.transaction_types();
        let write_weight: f64 = types.iter().filter(|t| !t.read_only).map(|t| t.default_weight).sum();
        let total: f64 = types.iter().map(|t| t.default_weight).sum();
        assert!(write_weight / total < 0.01);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
