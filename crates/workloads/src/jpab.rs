//! JPAB: the JPA (object-relational mapping) benchmark (Table 1, Feature
//! Testing). Emulates an ORM's entity lifecycle — persist / retrieve /
//! update / delete of simple entity rows, each in its own transaction, the
//! access pattern a JPA provider generates.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_f, p_i, p_s, run_txn};

const BASE_ENTITIES: i64 = 500;

pub struct Jpab {
    next_id: AtomicI64,
}

impl Default for Jpab {
    fn default() -> Self {
        Jpab::new()
    }
}

impl Jpab {
    pub fn new() -> Jpab {
        Jpab { next_id: AtomicI64::new(BASE_ENTITIES) }
    }

    fn existing(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.next_id.load(Ordering::Relaxed).max(1) - 1)
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_person",
        "CREATE TABLE jpab_person (id INT PRIMARY KEY, first_name VARCHAR(32), \
         last_name VARCHAR(32), phone VARCHAR(16), balance FLOAT, version INT NOT NULL)",
    );
    cat.define("persist", "INSERT INTO jpab_person VALUES (?, ?, ?, ?, ?, 0)");
    cat.define("retrieve", "SELECT * FROM jpab_person WHERE id = ?");
    cat.define(
        "merge",
        "UPDATE jpab_person SET phone = ?, version = version + 1 WHERE id = ?",
    );
    cat.define("remove", "DELETE FROM jpab_person WHERE id = ?");
    cat
}

impl Workload for Jpab {
    fn name(&self) -> &'static str {
        "jpab"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::FeatureTesting
    }

    fn domain(&self) -> &'static str {
        "Object-Relational Mapping"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("Persist", 25.0, false),
            TransactionType::new("Retrieve", 40.0, true),
            TransactionType::new("Update", 25.0, false),
            TransactionType::new("Delete", 10.0, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        conn.execute(&cat.resolve("create_person", bp_sql::Dialect::MySql).unwrap(), &[])?;
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let n = ((BASE_ENTITIES as f64 * scale) as i64).max(20);
        for id in 0..n {
            conn.execute(
                "INSERT INTO jpab_person VALUES (?, ?, ?, ?, ?, 0)",
                &[
                    p_i(id),
                    p_s(bp_util::text::first_name(rng)),
                    p_s(bp_util::text::last_name(rng)),
                    p_s(bp_util::text::phone(rng)),
                    p_f(rng.f64_range(0.0, 1_000.0)),
                ],
            )?;
        }
        self.next_id.store(n, Ordering::Relaxed);
        Ok(LoadSummary { tables: 1, rows: n as u64 })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        match txn_idx {
            0 => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let first = bp_util::text::first_name(rng);
                let last = bp_util::text::last_name(rng);
                let phone = bp_util::text::phone(rng);
                let bal = rng.f64_range(0.0, 1_000.0);
                run_txn(conn, |c| {
                    c.execute(
                        "INSERT INTO jpab_person VALUES (?, ?, ?, ?, ?, 0)",
                        &[p_i(id), p_s(first.clone()), p_s(last.clone()), p_s(phone.clone()), p_f(bal)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            1 => {
                let id = self.existing(rng);
                run_txn(conn, |c| {
                    let rs = c.query("SELECT * FROM jpab_person WHERE id = ?", &[p_i(id)])?;
                    Ok(if rs.is_empty() { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            2 => {
                // ORM merge: optimistic-locking style read + versioned write.
                let id = self.existing(rng);
                let phone = bp_util::text::phone(rng);
                run_txn(conn, |c| {
                    let rs = c.query(
                        "SELECT version FROM jpab_person WHERE id = ? FOR UPDATE",
                        &[p_i(id)],
                    )?;
                    if rs.is_empty() {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    c.execute(
                        "UPDATE jpab_person SET phone = ?, version = version + 1 WHERE id = ?",
                        &[p_s(phone.clone()), p_i(id)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            3 => {
                let id = self.existing(rng);
                run_txn(conn, |c| {
                    let n = c.execute("DELETE FROM jpab_person WHERE id = ?", &[p_i(id)])?.affected();
                    Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            other => panic!("jpab has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Jpab, Connection) {
        let db = Database::new(Personality::test());
        let w = Jpab::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..4 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn version_bumps_on_update() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        for _ in 0..50 {
            w.execute(2, &mut conn, &mut rng).unwrap();
        }
        let max_v = conn
            .query("SELECT MAX(version) AS v FROM jpab_person", &[])
            .unwrap()
            .get_int(0, "v")
            .unwrap();
        assert!(max_v >= 1);
    }

    #[test]
    fn persist_then_delete_balances() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(4);
        let before = conn.query("SELECT COUNT(*) AS n FROM jpab_person", &[]).unwrap().get_int(0, "n").unwrap();
        let mut delta = 0i64;
        for _ in 0..40 {
            if w.execute(0, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                delta += 1;
            }
            if w.execute(3, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                delta -= 1;
            }
        }
        let after = conn.query("SELECT COUNT(*) AS n FROM jpab_person", &[]).unwrap().get_int(0, "n").unwrap();
        assert_eq!(after - before, delta);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
