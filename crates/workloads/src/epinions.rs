//! Epinions: the consumer-review social network (Table 1, Web-Oriented).
//!
//! Users, items, reviews and a trust graph, with the original nine
//! transaction types (five reads over the review/trust join structure,
//! four updates).

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_i, p_s, run_txn};

const BASE_USERS: i64 = 200;
const BASE_ITEMS: i64 = 200;
const REVIEWS_PER_ITEM: i64 = 5;
const TRUST_PER_USER: i64 = 10;

pub struct Epinions {
    users: AtomicI64,
    items: AtomicI64,
}

impl Default for Epinions {
    fn default() -> Self {
        Epinions::new()
    }
}

impl Epinions {
    pub fn new() -> Epinions {
        Epinions { users: AtomicI64::new(BASE_USERS), items: AtomicI64::new(BASE_ITEMS) }
    }

    fn user(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.users.load(Ordering::Relaxed).max(1) - 1)
    }

    fn item(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.items.load(Ordering::Relaxed).max(1) - 1)
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_useracct",
        "CREATE TABLE ep_user (u_id INT PRIMARY KEY, name VARCHAR(32) NOT NULL)",
    );
    cat.define(
        "create_item",
        "CREATE TABLE ep_item (i_id INT PRIMARY KEY, title VARCHAR(64) NOT NULL)",
    );
    cat.define(
        "create_review",
        "CREATE TABLE review (a_id INT PRIMARY KEY, u_id INT NOT NULL, i_id INT NOT NULL, \
         rating INT NOT NULL, comment VARCHAR(256))",
    );
    cat.define("create_review_item_idx", "CREATE INDEX idx_review_item ON review (i_id)");
    cat.define("create_review_user_idx", "CREATE INDEX idx_review_user ON review (u_id)");
    cat.define(
        "create_trust",
        "CREATE TABLE trust (source_u_id INT NOT NULL, target_u_id INT NOT NULL, trust INT NOT NULL, \
         PRIMARY KEY (source_u_id, target_u_id))",
    );
    cat.define("get_review_by_item", "SELECT * FROM review WHERE i_id = ? ORDER BY rating DESC LIMIT 10");
    cat.define("get_reviews_by_user", "SELECT * FROM review WHERE u_id = ? LIMIT 10");
    cat.define(
        "get_avg_rating_trusted",
        "SELECT AVG(r.rating) AS avg_r FROM review r JOIN trust t ON r.u_id = t.target_u_id \
         WHERE r.i_id = ? AND t.source_u_id = ?",
    );
    cat.define("get_item_avg_rating", "SELECT AVG(rating) AS avg_r FROM review WHERE i_id = ?");
    cat.define("update_user_name", "UPDATE ep_user SET name = ? WHERE u_id = ?");
    cat.define("update_item_title", "UPDATE ep_item SET title = ? WHERE i_id = ?");
    cat.define(
        "update_review_rating",
        "UPDATE review SET rating = ? WHERE i_id = ? AND u_id = ?",
    );
    cat.define(
        "update_trust",
        "UPDATE trust SET trust = ? WHERE source_u_id = ? AND target_u_id = ?",
    );
    cat
}

impl Workload for Epinions {
    fn name(&self) -> &'static str {
        "epinions"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::WebOriented
    }

    fn domain(&self) -> &'static str {
        "Social Networking"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("GetReviewItemById", 20.0, true),
            TransactionType::new("GetReviewsByUser", 15.0, true),
            TransactionType::new("GetAverageRatingByTrustedUser", 10.0, true).with_cost(2.0),
            TransactionType::new("GetItemAverageRating", 15.0, true),
            TransactionType::new("GetItemReviewsByTrustedUser", 10.0, true).with_cost(2.0),
            TransactionType::new("UpdateUserName", 7.5, false),
            TransactionType::new("UpdateItemTitle", 7.5, false),
            TransactionType::new("UpdateReviewRating", 7.5, false),
            TransactionType::new("UpdateTrustRating", 7.5, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_useracct",
            "create_item",
            "create_review",
            "create_review_item_idx",
            "create_review_user_idx",
            "create_trust",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let users = ((BASE_USERS as f64 * scale) as i64).max(10);
        let items = ((BASE_ITEMS as f64 * scale) as i64).max(10);
        let mut rows = 0u64;
        for u in 0..users {
            conn.execute(
                "INSERT INTO ep_user VALUES (?, ?)",
                &[p_i(u), p_s(bp_util::text::full_name(rng))],
            )?;
            rows += 1;
        }
        for i in 0..items {
            conn.execute(
                "INSERT INTO ep_item VALUES (?, ?)",
                &[p_i(i), p_s(rng.astring(10, 40))],
            )?;
            rows += 1;
        }
        let mut a_id = 0;
        for i in 0..items {
            for _ in 0..rng.int_range(1, REVIEWS_PER_ITEM) {
                conn.execute(
                    "INSERT INTO review VALUES (?, ?, ?, ?, ?)",
                    &[
                        p_i(a_id),
                        p_i(rng.int_range(0, users - 1)),
                        p_i(i),
                        p_i(rng.int_range(0, 5)),
                        p_s(bp_util::text::words(rng, 8)),
                    ],
                )?;
                a_id += 1;
                rows += 1;
            }
        }
        for u in 0..users {
            let mut targets = std::collections::HashSet::new();
            for _ in 0..rng.int_range(1, TRUST_PER_USER) {
                let t = rng.int_range(0, users - 1);
                if t != u && targets.insert(t) {
                    conn.execute(
                        "INSERT INTO trust VALUES (?, ?, ?)",
                        &[p_i(u), p_i(t), p_i(rng.int_range(0, 1))],
                    )?;
                    rows += 1;
                }
            }
        }
        self.users.store(users, Ordering::Relaxed);
        self.items.store(items, Ordering::Relaxed);
        Ok(LoadSummary { tables: 4, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let u = self.user(rng);
        let i = self.item(rng);
        match txn_idx {
            0 => run_txn(conn, |c| {
                c.query("SELECT * FROM review WHERE i_id = ? ORDER BY rating DESC LIMIT 10", &[p_i(i)])?;
                Ok(TxnOutcome::Committed)
            }),
            1 => run_txn(conn, |c| {
                c.query("SELECT * FROM review WHERE u_id = ? LIMIT 10", &[p_i(u)])?;
                Ok(TxnOutcome::Committed)
            }),
            2 => run_txn(conn, |c| {
                c.query(
                    "SELECT AVG(r.rating) AS avg_r FROM review r JOIN trust t ON r.u_id = t.target_u_id \
                     WHERE r.i_id = ? AND t.source_u_id = ?",
                    &[p_i(i), p_i(u)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            3 => run_txn(conn, |c| {
                c.query("SELECT AVG(rating) AS avg_r FROM review WHERE i_id = ?", &[p_i(i)])?;
                Ok(TxnOutcome::Committed)
            }),
            4 => run_txn(conn, |c| {
                c.query(
                    "SELECT r.rating, r.comment FROM review r JOIN trust t ON r.u_id = t.target_u_id \
                     WHERE r.i_id = ? AND t.source_u_id = ? LIMIT 10",
                    &[p_i(i), p_i(u)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            5 => {
                let name = bp_util::text::full_name(rng);
                run_txn(conn, |c| {
                    c.execute("UPDATE ep_user SET name = ? WHERE u_id = ?", &[p_s(name.clone()), p_i(u)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            6 => {
                let title = rng.astring(10, 40);
                run_txn(conn, |c| {
                    c.execute("UPDATE ep_item SET title = ? WHERE i_id = ?", &[p_s(title.clone()), p_i(i)])?;
                    Ok(TxnOutcome::Committed)
                })
            }
            7 => {
                let rating = rng.int_range(0, 5);
                run_txn(conn, |c| {
                    let n = c
                        .execute(
                            "UPDATE review SET rating = ? WHERE i_id = ? AND u_id = ?",
                            &[p_i(rating), p_i(i), p_i(u)],
                        )?
                        .affected();
                    Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            8 => {
                let target = self.user(rng);
                let trust = rng.int_range(0, 1);
                run_txn(conn, |c| {
                    let n = c
                        .execute(
                            "UPDATE trust SET trust = ? WHERE source_u_id = ? AND target_u_id = ?",
                            &[p_i(trust), p_i(u), p_i(target)],
                        )?
                        .affected();
                    Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            other => panic!("epinions has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Epinions, Connection) {
        let db = Database::new(Personality::test());
        let w = Epinions::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.3, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..9 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn trusted_rating_join_returns_subset() {
        let (_, mut conn) = setup();
        // The trusted average is computed over a subset of all reviews.
        let all = conn
            .query("SELECT COUNT(*) AS n FROM review WHERE i_id = 0", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        let trusted = conn
            .query(
                "SELECT COUNT(*) AS n FROM review r JOIN trust t ON r.u_id = t.target_u_id \
                 WHERE r.i_id = 0 AND t.source_u_id = 0",
                &[],
            )
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert!(trusted <= all * TRUST_PER_USER);
    }

    #[test]
    fn weights_sum_to_100() {
        assert!((Epinions::new().default_weights().iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
