//! Shared helpers for benchmark transaction control code.

use bp_sql::{Connection, Result as SqlResult};
use bp_storage::Value;

/// Run `body` in an explicit transaction: commit on success, roll back on
/// error. The standard wrapper for every benchmark transaction.
pub fn run_txn<T>(
    conn: &mut Connection,
    body: impl FnOnce(&mut Connection) -> SqlResult<T>,
) -> SqlResult<T> {
    conn.begin()?;
    match body(conn) {
        Ok(v) => {
            // The body may have rolled back itself (benchmark-level aborts
            // like TPC-C's invalid-item NewOrder).
            if conn.in_transaction() {
                conn.commit()?;
            }
            Ok(v)
        }
        Err(e) => {
            if conn.in_transaction() {
                let _ = conn.rollback();
            }
            Err(e)
        }
    }
}

/// Integer parameter shorthand.
pub fn p_i(v: i64) -> Value {
    Value::Int(v)
}

/// Float parameter shorthand.
pub fn p_f(v: f64) -> Value {
    Value::Float(v)
}

/// String parameter shorthand.
pub fn p_s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_sql::SqlError;
    use bp_storage::{Database, Personality};

    #[test]
    fn run_txn_commits() {
        let db = Database::new(Personality::test());
        let mut c = Connection::open(&db);
        c.execute_batch("CREATE TABLE t (id INT PRIMARY KEY);").unwrap();
        run_txn(&mut c, |c| c.execute("INSERT INTO t VALUES (1)", &[])).unwrap();
        assert!(!c.in_transaction());
        assert_eq!(c.query("SELECT COUNT(*) AS n FROM t", &[]).unwrap().get_int(0, "n"), Some(1));
    }

    #[test]
    fn run_txn_rolls_back_on_error() {
        let db = Database::new(Personality::test());
        let mut c = Connection::open(&db);
        c.execute_batch("CREATE TABLE t (id INT PRIMARY KEY);").unwrap();
        let r: SqlResult<()> = run_txn(&mut c, |c| {
            c.execute("INSERT INTO t VALUES (1)", &[])?;
            Err(SqlError::Eval("boom".into()))
        });
        assert!(r.is_err());
        assert!(!c.in_transaction());
        assert_eq!(c.query("SELECT COUNT(*) AS n FROM t", &[]).unwrap().get_int(0, "n"), Some(0));
    }
}
