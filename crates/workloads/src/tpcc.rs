//! TPC-C: the order-processing OLTP benchmark (Table 1, Transactional).
//!
//! All nine tables and the five standard transactions with the canonical
//! 45/43/4/4/4 mixture, NURand parameter generation, customer-by-last-name
//! lookups and the 1% NewOrder rollback. Loader cardinalities are reduced
//! (items, customers per district) so a scale-factor-1 database loads in
//! milliseconds; the access *patterns* — per-warehouse hot districts,
//! stock updates, order-line fan-out — are preserved.

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::{NuRand, Rng};
use bp_util::text::tpcc_last_name;

use crate::helpers::{p_f, p_i, p_s, run_txn};

pub const DISTRICTS_PER_WAREHOUSE: i64 = 10;
pub const CUSTOMERS_PER_DISTRICT: i64 = 30;
pub const ITEMS: i64 = 200;
pub const INITIAL_ORDERS_PER_DISTRICT: i64 = 30;

pub struct Tpcc {
    warehouses: AtomicI64,
    nurand_c_last: NuRand,
    nurand_c_id: NuRand,
    nurand_i_id: NuRand,
    next_h_id: AtomicI64,
}

impl Default for Tpcc {
    fn default() -> Self {
        Tpcc::new()
    }
}

impl Tpcc {
    pub fn new() -> Tpcc {
        Tpcc {
            warehouses: AtomicI64::new(1),
            nurand_c_last: NuRand::new(255, 123),
            nurand_c_id: NuRand::new(1023, 259),
            nurand_i_id: NuRand::new(8191, 7911),
            next_h_id: AtomicI64::new(0),
        }
    }

    fn wid(&self, rng: &mut Rng) -> i64 {
        rng.int_range(1, self.warehouses.load(Ordering::Relaxed).max(1))
    }

    fn item_id(&self, rng: &mut Rng) -> i64 {
        self.nurand_i_id.sample(rng, 1, ITEMS)
    }

    fn customer_id(&self, rng: &mut Rng) -> i64 {
        self.nurand_c_id.sample(rng, 1, CUSTOMERS_PER_DISTRICT)
    }

    fn last_name(&self, rng: &mut Rng) -> String {
        tpcc_last_name(self.nurand_c_last.sample(rng, 0, 999) % CUSTOMERS_PER_DISTRICT)
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_warehouse",
        "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name VARCHAR(10), w_street_1 VARCHAR(20), \
         w_city VARCHAR(20), w_state VARCHAR(2), w_zip VARCHAR(9), w_tax FLOAT, w_ytd FLOAT)",
    );
    cat.define(
        "create_district",
        "CREATE TABLE district (d_w_id INT NOT NULL, d_id INT NOT NULL, d_name VARCHAR(10), \
         d_street_1 VARCHAR(20), d_city VARCHAR(20), d_state VARCHAR(2), d_zip VARCHAR(9), \
         d_tax FLOAT, d_ytd FLOAT, d_next_o_id INT, PRIMARY KEY (d_w_id, d_id))",
    );
    cat.define(
        "create_customer",
        "CREATE TABLE customer (c_w_id INT NOT NULL, c_d_id INT NOT NULL, c_id INT NOT NULL, \
         c_first VARCHAR(16), c_middle VARCHAR(2), c_last VARCHAR(16), c_city VARCHAR(20), \
         c_state VARCHAR(2), c_credit VARCHAR(2), c_credit_lim FLOAT, c_discount FLOAT, \
         c_balance FLOAT, c_ytd_payment FLOAT, c_payment_cnt INT, c_delivery_cnt INT, \
         PRIMARY KEY (c_w_id, c_d_id, c_id))",
    );
    cat.define(
        "create_customer_name_idx",
        "CREATE INDEX idx_customer_name ON customer (c_w_id, c_d_id, c_last)",
    );
    cat.define(
        "create_history",
        "CREATE TABLE history (h_id INT PRIMARY KEY, h_c_id INT, h_c_d_id INT, h_c_w_id INT, \
         h_d_id INT, h_w_id INT, h_amount FLOAT, h_data VARCHAR(24))",
    );
    cat.define(
        "create_item",
        "CREATE TABLE item (i_id INT PRIMARY KEY, i_im_id INT, i_name VARCHAR(24), \
         i_price FLOAT, i_data VARCHAR(50))",
    );
    cat.define(
        "create_stock",
        "CREATE TABLE stock (s_w_id INT NOT NULL, s_i_id INT NOT NULL, s_quantity INT, \
         s_ytd FLOAT, s_order_cnt INT, s_remote_cnt INT, s_data VARCHAR(50), \
         PRIMARY KEY (s_w_id, s_i_id))",
    );
    cat.define(
        "create_orders",
        "CREATE TABLE orders (o_w_id INT NOT NULL, o_d_id INT NOT NULL, o_id INT NOT NULL, \
         o_c_id INT, o_carrier_id INT, o_ol_cnt INT, o_all_local INT, o_entry_d INT, \
         PRIMARY KEY (o_w_id, o_d_id, o_id))",
    );
    cat.define(
        "create_orders_customer_idx",
        "CREATE INDEX idx_orders_customer ON orders (o_w_id, o_d_id, o_c_id)",
    );
    cat.define(
        "create_new_order",
        "CREATE TABLE new_order (no_w_id INT NOT NULL, no_d_id INT NOT NULL, no_o_id INT NOT NULL, \
         PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
    );
    cat.define(
        "create_order_line",
        "CREATE TABLE order_line (ol_w_id INT NOT NULL, ol_d_id INT NOT NULL, ol_o_id INT NOT NULL, \
         ol_number INT NOT NULL, ol_i_id INT, ol_supply_w_id INT, ol_quantity INT, ol_amount FLOAT, \
         PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
    );
    cat.define("get_district", "SELECT * FROM district WHERE d_w_id = ? AND d_id = ? FOR UPDATE");
    cat.define(
        "get_customer_by_name",
        "SELECT * FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? ORDER BY c_first",
    );
    cat.define(
        "stock_level_join",
        "SELECT COUNT(DISTINCT ol_i_id) AS low FROM order_line ol JOIN stock s \
         ON ol.ol_i_id = s.s_i_id WHERE ol.ol_w_id = ? AND ol.ol_d_id = ? \
         AND ol.ol_o_id >= ? AND s.s_w_id = ? AND s.s_quantity < ?",
    );
    cat
}

impl Workload for Tpcc {
    fn name(&self) -> &'static str {
        "tpcc"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::Transactional
    }

    fn domain(&self) -> &'static str {
        "Order Processing"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("NewOrder", 45.0, false).with_cost(2.5),
            TransactionType::new("Payment", 43.0, false),
            TransactionType::new("OrderStatus", 4.0, true),
            TransactionType::new("Delivery", 4.0, false).with_cost(3.0),
            TransactionType::new("StockLevel", 4.0, true).with_cost(2.0),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_warehouse",
            "create_district",
            "create_customer",
            "create_customer_name_idx",
            "create_history",
            "create_item",
            "create_stock",
            "create_orders",
            "create_orders_customer_idx",
            "create_new_order",
            "create_order_line",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let warehouses = (scale.max(0.01).ceil() as i64).max(1);
        let mut rows = 0u64;

        // Items (shared).
        for i in 1..=ITEMS {
            conn.execute(
                "INSERT INTO item VALUES (?, ?, ?, ?, ?)",
                &[
                    p_i(i),
                    p_i(rng.int_range(1, 10_000)),
                    p_s(rng.astring(14, 24)),
                    p_f(rng.f64_range(1.0, 100.0)),
                    p_s(rng.astring(26, 50)),
                ],
            )?;
            rows += 1;
        }

        for w in 1..=warehouses {
            conn.execute(
                "INSERT INTO warehouse VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                &[
                    p_i(w),
                    p_s(rng.astring(6, 10)),
                    p_s(rng.astring(10, 20)),
                    p_s(rng.astring(10, 20)),
                    p_s(bp_util::text::state(rng)),
                    p_s(bp_util::text::zip(rng)),
                    p_f(rng.f64_range(0.0, 0.2)),
                    p_f(300_000.0),
                ],
            )?;
            rows += 1;
            for i in 1..=ITEMS {
                conn.execute(
                    "INSERT INTO stock VALUES (?, ?, ?, ?, ?, ?, ?)",
                    &[
                        p_i(w),
                        p_i(i),
                        p_i(rng.int_range(10, 100)),
                        p_f(0.0),
                        p_i(0),
                        p_i(0),
                        p_s(rng.astring(26, 50)),
                    ],
                )?;
                rows += 1;
            }
            for d in 1..=DISTRICTS_PER_WAREHOUSE {
                conn.execute(
                    "INSERT INTO district VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    &[
                        p_i(w),
                        p_i(d),
                        p_s(rng.astring(6, 10)),
                        p_s(rng.astring(10, 20)),
                        p_s(rng.astring(10, 20)),
                        p_s(bp_util::text::state(rng)),
                        p_s(bp_util::text::zip(rng)),
                        p_f(rng.f64_range(0.0, 0.2)),
                        p_f(30_000.0),
                        p_i(INITIAL_ORDERS_PER_DISTRICT + 1),
                    ],
                )?;
                rows += 1;
                for c in 1..=CUSTOMERS_PER_DISTRICT {
                    let last = if c <= CUSTOMERS_PER_DISTRICT {
                        tpcc_last_name((c - 1) % CUSTOMERS_PER_DISTRICT)
                    } else {
                        tpcc_last_name(self.nurand_c_last.sample(rng, 0, 999))
                    };
                    conn.execute(
                        "INSERT INTO customer VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        &[
                            p_i(w),
                            p_i(d),
                            p_i(c),
                            p_s(rng.astring(8, 16)),
                            p_s("OE"),
                            p_s(last),
                            p_s(rng.astring(10, 20)),
                            p_s(bp_util::text::state(rng)),
                            p_s(if rng.bool_with(0.1) { "BC" } else { "GC" }),
                            p_f(50_000.0),
                            p_f(rng.f64_range(0.0, 0.5)),
                            p_f(-10.0),
                            p_f(10.0),
                            p_i(1),
                            p_i(0),
                        ],
                    )?;
                    rows += 1;
                }
                // Initial orders with order lines; the most recent third
                // stay in new_order (undelivered).
                for o in 1..=INITIAL_ORDERS_PER_DISTRICT {
                    let c = rng.int_range(1, CUSTOMERS_PER_DISTRICT);
                    let ol_cnt = rng.int_range(5, 15);
                    let delivered = o <= INITIAL_ORDERS_PER_DISTRICT * 2 / 3;
                    conn.execute(
                        "INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        &[
                            p_i(w),
                            p_i(d),
                            p_i(o),
                            p_i(c),
                            if delivered { p_i(rng.int_range(1, 10)) } else { bp_storage::Value::Null },
                            p_i(ol_cnt),
                            p_i(1),
                            p_i(o),
                        ],
                    )?;
                    rows += 1;
                    if !delivered {
                        conn.execute(
                            "INSERT INTO new_order VALUES (?, ?, ?)",
                            &[p_i(w), p_i(d), p_i(o)],
                        )?;
                        rows += 1;
                    }
                    for ol in 1..=ol_cnt {
                        conn.execute(
                            "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                            &[
                                p_i(w),
                                p_i(d),
                                p_i(o),
                                p_i(ol),
                                p_i(rng.int_range(1, ITEMS)),
                                p_i(w),
                                p_i(5),
                                p_f(rng.f64_range(0.01, 9_999.99)),
                            ],
                        )?;
                        rows += 1;
                    }
                }
            }
        }
        self.warehouses.store(warehouses, Ordering::Relaxed);
        Ok(LoadSummary { tables: 9, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        match txn_idx {
            0 => self.new_order(conn, rng),
            1 => self.payment(conn, rng),
            2 => self.order_status(conn, rng),
            3 => self.delivery(conn, rng),
            4 => self.stock_level(conn, rng),
            other => panic!("tpcc has no transaction {other}"),
        }
    }
}

impl Tpcc {
    fn new_order(&self, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let w = self.wid(rng);
        let d = rng.int_range(1, DISTRICTS_PER_WAREHOUSE);
        let c = self.customer_id(rng);
        let ol_cnt = rng.int_range(5, 15);
        // Clause 2.4.1.4: 1% of NewOrders use an invalid item and roll back.
        let rollback = rng.bool_with(0.01);
        let warehouses = self.warehouses.load(Ordering::Relaxed);

        // Pre-generate the order lines.
        let mut lines = Vec::with_capacity(ol_cnt as usize);
        for ol in 1..=ol_cnt {
            let i_id = if rollback && ol == ol_cnt { -1 } else { self.item_id(rng) };
            // 1% remote warehouse when there is more than one.
            let supply_w = if warehouses > 1 && rng.bool_with(0.01) {
                loop {
                    let other = rng.int_range(1, warehouses);
                    if other != w {
                        break other;
                    }
                }
            } else {
                w
            };
            lines.push((ol, i_id, supply_w, rng.int_range(1, 10)));
        }

        run_txn(conn, |cn| {
            // District: read + bump next_o_id (the per-district hot spot).
            let rs = cn.query(
                "SELECT d_next_o_id, d_tax FROM district WHERE d_w_id = ? AND d_id = ? FOR UPDATE",
                &[p_i(w), p_i(d)],
            )?;
            let o_id = rs.get_int(0, "d_next_o_id").expect("district exists");
            cn.execute(
                "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = ? AND d_id = ?",
                &[p_i(w), p_i(d)],
            )?;
            cn.query(
                "SELECT c_discount, c_last, c_credit FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                &[p_i(w), p_i(d), p_i(c)],
            )?;
            cn.execute(
                "INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                &[
                    p_i(w),
                    p_i(d),
                    p_i(o_id),
                    p_i(c),
                    bp_storage::Value::Null,
                    p_i(lines.len() as i64),
                    p_i(1),
                    p_i(o_id),
                ],
            )?;
            cn.execute("INSERT INTO new_order VALUES (?, ?, ?)", &[p_i(w), p_i(d), p_i(o_id)])?;

            for (ol, i_id, supply_w, qty) in &lines {
                let item = cn.query("SELECT i_price FROM item WHERE i_id = ?", &[p_i(*i_id)])?;
                if item.is_empty() {
                    // Invalid item: the whole transaction rolls back.
                    cn.rollback()?;
                    return Ok(TxnOutcome::UserAborted);
                }
                let price = item.get_f64(0, "i_price").unwrap();
                let stock = cn.query(
                    "SELECT s_quantity FROM stock WHERE s_w_id = ? AND s_i_id = ? FOR UPDATE",
                    &[p_i(*supply_w), p_i(*i_id)],
                )?;
                let s_qty = stock.get_int(0, "s_quantity").unwrap_or(50);
                let new_qty = if s_qty >= qty + 10 { s_qty - qty } else { s_qty - qty + 91 };
                cn.execute(
                    "UPDATE stock SET s_quantity = ?, s_order_cnt = s_order_cnt + 1 \
                     WHERE s_w_id = ? AND s_i_id = ?",
                    &[p_i(new_qty), p_i(*supply_w), p_i(*i_id)],
                )?;
                cn.execute(
                    "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    &[
                        p_i(w),
                        p_i(d),
                        p_i(o_id),
                        p_i(*ol),
                        p_i(*i_id),
                        p_i(*supply_w),
                        p_i(*qty),
                        p_f(price * *qty as f64),
                    ],
                )?;
            }
            Ok(TxnOutcome::Committed)
        })
    }

    fn payment(&self, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let w = self.wid(rng);
        let d = rng.int_range(1, DISTRICTS_PER_WAREHOUSE);
        let amount = rng.f64_range(1.0, 5_000.0);
        let by_name = rng.bool_with(0.6);
        let h_id = self.next_h_id.fetch_add(1, Ordering::Relaxed);
        let c_id = self.customer_id(rng);
        let c_last = self.last_name(rng);

        run_txn(conn, |cn| {
            cn.execute(
                "UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
                &[p_f(amount), p_i(w)],
            )?;
            cn.execute(
                "UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?",
                &[p_f(amount), p_i(w), p_i(d)],
            )?;
            // Customer selection: 60% by last name (middle row), 40% by id.
            let cid = if by_name {
                let rs = cn.query(
                    "SELECT c_id FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? ORDER BY c_first",
                    &[p_i(w), p_i(d), p_s(c_last.clone())],
                )?;
                if rs.is_empty() {
                    return Ok(TxnOutcome::UserAborted);
                }
                rs.get_int(rs.len() / 2, "c_id").unwrap()
            } else {
                c_id
            };
            cn.execute(
                "UPDATE customer SET c_balance = c_balance - ?, c_ytd_payment = c_ytd_payment + ?, \
                 c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                &[p_f(amount), p_f(amount), p_i(w), p_i(d), p_i(cid)],
            )?;
            cn.execute(
                "INSERT INTO history VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                &[
                    p_i(h_id),
                    p_i(cid),
                    p_i(d),
                    p_i(w),
                    p_i(d),
                    p_i(w),
                    p_f(amount),
                    p_s(rng.astring(12, 24)),
                ],
            )?;
            Ok(TxnOutcome::Committed)
        })
    }

    fn order_status(&self, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let w = self.wid(rng);
        let d = rng.int_range(1, DISTRICTS_PER_WAREHOUSE);
        let by_name = rng.bool_with(0.6);
        let c_id = self.customer_id(rng);
        let c_last = self.last_name(rng);

        run_txn(conn, |cn| {
            let cid = if by_name {
                let rs = cn.query(
                    "SELECT c_id FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? ORDER BY c_first",
                    &[p_i(w), p_i(d), p_s(c_last.clone())],
                )?;
                if rs.is_empty() {
                    return Ok(TxnOutcome::UserAborted);
                }
                rs.get_int(rs.len() / 2, "c_id").unwrap()
            } else {
                c_id
            };
            let orders = cn.query(
                "SELECT o_id FROM orders WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ? \
                 ORDER BY o_id DESC LIMIT 1",
                &[p_i(w), p_i(d), p_i(cid)],
            )?;
            if let Some(o_id) = orders.get_int(0, "o_id") {
                cn.query(
                    "SELECT * FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                    &[p_i(w), p_i(d), p_i(o_id)],
                )?;
            }
            Ok(TxnOutcome::Committed)
        })
    }

    fn delivery(&self, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let w = self.wid(rng);
        let carrier = rng.int_range(1, 10);

        run_txn(conn, |cn| {
            let mut delivered_any = false;
            for d in 1..=DISTRICTS_PER_WAREHOUSE {
                // Oldest undelivered order.
                let rs = cn.query(
                    "SELECT no_o_id FROM new_order WHERE no_w_id = ? AND no_d_id = ? \
                     ORDER BY no_o_id LIMIT 1",
                    &[p_i(w), p_i(d)],
                )?;
                let Some(o_id) = rs.get_int(0, "no_o_id") else { continue };
                delivered_any = true;
                cn.execute(
                    "DELETE FROM new_order WHERE no_w_id = ? AND no_d_id = ? AND no_o_id = ?",
                    &[p_i(w), p_i(d), p_i(o_id)],
                )?;
                let order = cn.query(
                    "SELECT o_c_id FROM orders WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
                    &[p_i(w), p_i(d), p_i(o_id)],
                )?;
                let c_id = order.get_int(0, "o_c_id").unwrap_or(1);
                cn.execute(
                    "UPDATE orders SET o_carrier_id = ? WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
                    &[p_i(carrier), p_i(w), p_i(d), p_i(o_id)],
                )?;
                let total = cn
                    .query(
                        "SELECT SUM(ol_amount) AS t FROM order_line \
                         WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                        &[p_i(w), p_i(d), p_i(o_id)],
                    )?
                    .get_f64(0, "t")
                    .unwrap_or(0.0);
                cn.execute(
                    "UPDATE customer SET c_balance = c_balance + ?, c_delivery_cnt = c_delivery_cnt + 1 \
                     WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                    &[p_f(total), p_i(w), p_i(d), p_i(c_id)],
                )?;
            }
            Ok(if delivered_any { TxnOutcome::Committed } else { TxnOutcome::UserAborted })
        })
    }

    fn stock_level(&self, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let w = self.wid(rng);
        let d = rng.int_range(1, DISTRICTS_PER_WAREHOUSE);
        let threshold = rng.int_range(10, 20);

        run_txn(conn, |cn| {
            let next = cn
                .query(
                    "SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
                    &[p_i(w), p_i(d)],
                )?
                .get_int(0, "d_next_o_id")
                .unwrap_or(1);
            cn.query(
                "SELECT COUNT(DISTINCT ol.ol_i_id) AS low FROM order_line ol JOIN stock s \
                 ON ol.ol_i_id = s.s_i_id WHERE ol.ol_w_id = ? AND ol.ol_d_id = ? \
                 AND ol.ol_o_id >= ? AND s.s_w_id = ? AND s.s_quantity < ?",
                &[p_i(w), p_i(d), p_i(next - 20), p_i(w), p_i(threshold)],
            )?;
            Ok(TxnOutcome::Committed)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (Tpcc, Connection) {
        let db = Database::new(Personality::test());
        let w = Tpcc::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 1.0, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn loader_cardinalities() {
        let (_, mut conn) = setup();
        let count = |c: &mut Connection, t: &str| {
            c.query(&format!("SELECT COUNT(*) AS n FROM {t}"), &[])
                .unwrap()
                .get_int(0, "n")
                .unwrap()
        };
        assert_eq!(count(&mut conn, "warehouse"), 1);
        assert_eq!(count(&mut conn, "district"), DISTRICTS_PER_WAREHOUSE);
        assert_eq!(count(&mut conn, "customer"), DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT);
        assert_eq!(count(&mut conn, "item"), ITEMS);
        assert_eq!(count(&mut conn, "stock"), ITEMS);
        assert_eq!(count(&mut conn, "orders"), DISTRICTS_PER_WAREHOUSE * INITIAL_ORDERS_PER_DISTRICT);
        assert!(count(&mut conn, "new_order") > 0);
        assert!(count(&mut conn, "order_line") > 5 * DISTRICTS_PER_WAREHOUSE * INITIAL_ORDERS_PER_DISTRICT);
    }

    #[test]
    fn new_order_advances_district_counter() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        let before = conn
            .query("SELECT SUM(d_next_o_id) AS t FROM district", &[])
            .unwrap()
            .get_int(0, "t")
            .unwrap();
        let mut committed = 0;
        for _ in 0..20 {
            if w.new_order(&mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                committed += 1;
            }
        }
        let after = conn
            .query("SELECT SUM(d_next_o_id) AS t FROM district", &[])
            .unwrap()
            .get_int(0, "t")
            .unwrap();
        // Rolled-back NewOrders must not advance the counter.
        assert_eq!(after - before, committed);
    }

    #[test]
    fn new_order_rollback_rate_roughly_one_percent() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        let mut aborted = 0;
        let n = 500;
        for _ in 0..n {
            if w.new_order(&mut conn, &mut rng).unwrap() == TxnOutcome::UserAborted {
                aborted += 1;
            }
        }
        assert!((1..=20).contains(&aborted), "aborts {aborted}/{n}");
    }

    #[test]
    fn payment_updates_balances() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(4);
        let before = conn
            .query("SELECT w_ytd FROM warehouse WHERE w_id = 1", &[])
            .unwrap()
            .get_f64(0, "w_ytd")
            .unwrap();
        for _ in 0..10 {
            w.payment(&mut conn, &mut rng).unwrap();
        }
        let after = conn
            .query("SELECT w_ytd FROM warehouse WHERE w_id = 1", &[])
            .unwrap()
            .get_f64(0, "w_ytd")
            .unwrap();
        assert!(after > before);
        let hist = conn
            .query("SELECT COUNT(*) AS n FROM history", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert!(hist >= 10 - 5, "history rows {hist}");
    }

    #[test]
    fn delivery_clears_new_orders() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(5);
        let before = conn
            .query("SELECT COUNT(*) AS n FROM new_order", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        w.delivery(&mut conn, &mut rng).unwrap();
        let after = conn
            .query("SELECT COUNT(*) AS n FROM new_order", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert_eq!(before - after, DISTRICTS_PER_WAREHOUSE);
    }

    #[test]
    fn order_status_and_stock_level_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(6);
        for _ in 0..20 {
            w.order_status(&mut conn, &mut rng).unwrap();
            w.stock_level(&mut conn, &mut rng).unwrap();
        }
    }

    #[test]
    fn standard_mixture() {
        let w = Tpcc::new();
        assert_eq!(w.default_weights(), vec![45.0, 43.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn multi_warehouse_scale() {
        let db = Database::new(Personality::test());
        let w = Tpcc::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 2.0, &mut Rng::new(7)).unwrap();
        let n = conn
            .query("SELECT COUNT(*) AS n FROM warehouse", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert_eq!(n, 2);
        let mut rng = Rng::new(8);
        for idx in 0..5 {
            w.execute(idx, &mut conn, &mut rng).unwrap();
        }
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
