//! LinkBench: Facebook's social-graph storage benchmark (Table 1,
//! Web-Oriented). Nodes, typed links and link counts with the standard
//! operation mix (read-dominated, ~69% GetLinkList).

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_i, p_s, run_txn};

const BASE_NODES: i64 = 500;
const LINKS_PER_NODE: i64 = 5;
const LINK_TYPE: i64 = 123;

pub struct LinkBench {
    nodes: AtomicI64,
}

impl Default for LinkBench {
    fn default() -> Self {
        LinkBench::new()
    }
}

impl LinkBench {
    pub fn new() -> LinkBench {
        LinkBench { nodes: AtomicI64::new(BASE_NODES) }
    }

    fn node(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.nodes.load(Ordering::Relaxed).max(1) - 1)
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_nodetable",
        "CREATE TABLE nodetable (id INT PRIMARY KEY, node_type INT NOT NULL, version INT NOT NULL, \
         time INT NOT NULL, data VARCHAR(255))",
    );
    cat.define(
        "create_linktable",
        "CREATE TABLE linktable (id1 INT NOT NULL, link_type INT NOT NULL, id2 INT NOT NULL, \
         visibility INT NOT NULL, data VARCHAR(255), version INT, time INT, \
         PRIMARY KEY (id1, link_type, id2))",
    );
    cat.define(
        "create_counttable",
        "CREATE TABLE counttable (id INT NOT NULL, link_type INT NOT NULL, count INT NOT NULL, \
         PRIMARY KEY (id, link_type))",
    );
    cat.define("get_node", "SELECT * FROM nodetable WHERE id = ?");
    cat.define("get_link", "SELECT * FROM linktable WHERE id1 = ? AND link_type = ? AND id2 = ?");
    cat.define(
        "get_link_list",
        "SELECT * FROM linktable WHERE id1 = ? AND link_type = ? AND visibility = 1 \
         ORDER BY time DESC LIMIT 50",
    );
    cat.define("count_link", "SELECT count FROM counttable WHERE id = ? AND link_type = ?");
    cat.define("add_link", "INSERT INTO linktable VALUES (?, ?, ?, 1, ?, 0, ?)");
    cat.define(
        "delete_link",
        "UPDATE linktable SET visibility = 0 WHERE id1 = ? AND link_type = ? AND id2 = ?",
    );
    cat.define(
        "update_count",
        "UPDATE counttable SET count = count + ? WHERE id = ? AND link_type = ?",
    );
    cat
}

impl Workload for LinkBench {
    fn name(&self) -> &'static str {
        "linkbench"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::WebOriented
    }

    fn domain(&self) -> &'static str {
        "Social Networking"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        // Facebook-published mix, lightly rounded.
        vec![
            TransactionType::new("GetNode", 13.0, true),
            TransactionType::new("GetLink", 2.0, true),
            TransactionType::new("GetLinkList", 50.0, true).with_cost(1.5),
            TransactionType::new("CountLink", 5.0, true),
            TransactionType::new("AddNode", 3.0, false),
            TransactionType::new("UpdateNode", 7.0, false),
            TransactionType::new("DeleteNode", 1.0, false),
            TransactionType::new("AddLink", 9.0, false).with_cost(1.5),
            TransactionType::new("DeleteLink", 3.0, false),
            TransactionType::new("UpdateLink", 7.0, false),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in ["create_nodetable", "create_linktable", "create_counttable"] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let nodes = ((BASE_NODES as f64 * scale) as i64).max(20);
        let mut rows = 0u64;
        for n in 0..nodes {
            conn.execute(
                "INSERT INTO nodetable VALUES (?, ?, ?, ?, ?)",
                &[p_i(n), p_i(1), p_i(0), p_i(n), p_s(rng.astring(20, 120))],
            )?;
            rows += 1;
            let mut count = 0;
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.int_range(1, LINKS_PER_NODE) {
                let id2 = rng.int_range(0, nodes - 1);
                if id2 != n && seen.insert(id2) {
                    conn.execute(
                        "INSERT INTO linktable VALUES (?, ?, ?, 1, ?, 0, ?)",
                        &[p_i(n), p_i(LINK_TYPE), p_i(id2), p_s(rng.astring(10, 60)), p_i(n)],
                    )?;
                    count += 1;
                    rows += 1;
                }
            }
            conn.execute(
                "INSERT INTO counttable VALUES (?, ?, ?)",
                &[p_i(n), p_i(LINK_TYPE), p_i(count)],
            )?;
            rows += 1;
        }
        self.nodes.store(nodes, Ordering::Relaxed);
        Ok(LoadSummary { tables: 3, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        let id1 = self.node(rng);
        let id2 = self.node(rng);
        match txn_idx {
            0 => run_txn(conn, |c| {
                c.query("SELECT * FROM nodetable WHERE id = ?", &[p_i(id1)])?;
                Ok(TxnOutcome::Committed)
            }),
            1 => run_txn(conn, |c| {
                c.query(
                    "SELECT * FROM linktable WHERE id1 = ? AND link_type = ? AND id2 = ?",
                    &[p_i(id1), p_i(LINK_TYPE), p_i(id2)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            2 => run_txn(conn, |c| {
                c.query(
                    "SELECT * FROM linktable WHERE id1 = ? AND link_type = ? AND visibility = 1 \
                     ORDER BY time DESC LIMIT 50",
                    &[p_i(id1), p_i(LINK_TYPE)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            3 => run_txn(conn, |c| {
                c.query(
                    "SELECT count FROM counttable WHERE id = ? AND link_type = ?",
                    &[p_i(id1), p_i(LINK_TYPE)],
                )?;
                Ok(TxnOutcome::Committed)
            }),
            4 => {
                let new_id = self.nodes.fetch_add(1, Ordering::Relaxed);
                let data = rng.astring(20, 120);
                run_txn(conn, |c| {
                    c.execute(
                        "INSERT INTO nodetable VALUES (?, ?, ?, ?, ?)",
                        &[p_i(new_id), p_i(1), p_i(0), p_i(new_id), p_s(data.clone())],
                    )?;
                    c.execute(
                        "INSERT INTO counttable VALUES (?, ?, 0)",
                        &[p_i(new_id), p_i(LINK_TYPE)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            5 => {
                let data = rng.astring(20, 120);
                run_txn(conn, |c| {
                    let n = c
                        .execute(
                            "UPDATE nodetable SET data = ?, version = version + 1 WHERE id = ?",
                            &[p_s(data.clone()), p_i(id1)],
                        )?
                        .affected();
                    Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            6 => run_txn(conn, |c| {
                let n = c.execute("DELETE FROM nodetable WHERE id = ?", &[p_i(id1)])?.affected();
                Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
            }),
            7 => {
                let data = rng.astring(10, 60);
                run_txn(conn, |c| {
                    let ins = c.execute(
                        "INSERT INTO linktable VALUES (?, ?, ?, 1, ?, 0, ?)",
                        &[p_i(id1), p_i(LINK_TYPE), p_i(id2), p_s(data.clone()), p_i(id1)],
                    );
                    match ins {
                        Ok(_) => {
                            c.execute(
                                "UPDATE counttable SET count = count + 1 WHERE id = ? AND link_type = ?",
                                &[p_i(id1), p_i(LINK_TYPE)],
                            )?;
                            Ok(TxnOutcome::Committed)
                        }
                        Err(bp_sql::SqlError::Storage(
                            bp_storage::StorageError::DuplicateKey { .. },
                        )) => Ok(TxnOutcome::UserAborted),
                        Err(e) => Err(e),
                    }
                })
            }
            8 => run_txn(conn, |c| {
                let n = c
                    .execute(
                        "UPDATE linktable SET visibility = 0 WHERE id1 = ? AND link_type = ? AND id2 = ?",
                        &[p_i(id1), p_i(LINK_TYPE), p_i(id2)],
                    )?
                    .affected();
                if n > 0 {
                    c.execute(
                        "UPDATE counttable SET count = count - 1 WHERE id = ? AND link_type = ?",
                        &[p_i(id1), p_i(LINK_TYPE)],
                    )?;
                    Ok(TxnOutcome::Committed)
                } else {
                    Ok(TxnOutcome::UserAborted)
                }
            }),
            9 => {
                let data = rng.astring(10, 60);
                run_txn(conn, |c| {
                    let n = c
                        .execute(
                            "UPDATE linktable SET data = ?, version = version + 1 \
                             WHERE id1 = ? AND link_type = ? AND id2 = ?",
                            &[p_s(data.clone()), p_i(id1), p_i(LINK_TYPE), p_i(id2)],
                        )?
                        .affected();
                    Ok(if n == 0 { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            other => panic!("linkbench has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (LinkBench, Connection) {
        let db = Database::new(Personality::test());
        let w = LinkBench::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..10 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn add_link_maintains_count() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            w.execute(7, &mut conn, &mut rng).unwrap();
        }
        // Every node's counttable entry matches its visible links.
        let rs = conn
            .query(
                "SELECT id1, COUNT(*) AS n FROM linktable WHERE visibility = 1 GROUP BY id1 ORDER BY id1",
                &[],
            )
            .unwrap();
        for r in 0..rs.len() {
            let id = rs.get_int(r, "id1").unwrap();
            let links = rs.get_int(r, "n").unwrap();
            let counted = conn
                .query("SELECT count FROM counttable WHERE id = ? AND link_type = ?", &[p_i(id), p_i(LINK_TYPE)])
                .unwrap()
                .get_int(0, "count")
                .unwrap_or(0);
            assert_eq!(links, counted, "node {id}");
        }
    }

    #[test]
    fn weights_sum_to_100() {
        assert!((LinkBench::new().default_weights().iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
