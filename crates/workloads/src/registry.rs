//! The benchmark registry: Table 1 of the paper as code.

use std::sync::Arc;

use bp_core::{BenchmarkClass, Workload};
use bp_sql::StatementCatalog;

/// Instantiate every bundled benchmark, in Table 1 order.
pub fn all_workloads() -> Vec<Arc<dyn Workload>> {
    vec![
        Arc::new(crate::auctionmark::AuctionMark::new()),
        Arc::new(crate::chbenchmark::ChBenchmark::new()),
        Arc::new(crate::seats::Seats::new()),
        Arc::new(crate::smallbank::SmallBank::new()),
        Arc::new(crate::tatp::Tatp::new()),
        Arc::new(crate::tpcc::Tpcc::new()),
        Arc::new(crate::voter::Voter::new()),
        Arc::new(crate::epinions::Epinions::new()),
        Arc::new(crate::linkbench::LinkBench::new()),
        Arc::new(crate::twitter::Twitter::new()),
        Arc::new(crate::wikipedia::Wikipedia::new()),
        Arc::new(crate::resourcestresser::ResourceStresser::new()),
        Arc::new(crate::ycsb::Ycsb::new()),
        Arc::new(crate::jpab::Jpab::new()),
        Arc::new(crate::sibench::SiBench::new()),
    ]
}

/// Instantiate one benchmark by name.
pub fn by_name(name: &str) -> Option<Arc<dyn Workload>> {
    let name = name.to_ascii_lowercase();
    all_workloads().into_iter().find(|w| w.name() == name)
}

/// The statement catalog of a benchmark (DDL + named DML, per dialect).
pub fn catalog_of(name: &str) -> Option<StatementCatalog> {
    match name.to_ascii_lowercase().as_str() {
        "auctionmark" => Some(crate::auctionmark::catalog()),
        "chbenchmark" => Some(crate::chbenchmark::catalog()),
        "seats" => Some(crate::seats::catalog()),
        "smallbank" => Some(crate::smallbank::catalog()),
        "tatp" => Some(crate::tatp::catalog()),
        "tpcc" => Some(crate::tpcc::catalog()),
        "voter" => Some(crate::voter::catalog()),
        "epinions" => Some(crate::epinions::catalog()),
        "linkbench" => Some(crate::linkbench::catalog()),
        "twitter" => Some(crate::twitter::catalog()),
        "wikipedia" => Some(crate::wikipedia::catalog()),
        "resourcestresser" => Some(crate::resourcestresser::catalog()),
        "ycsb" => Some(crate::ycsb::catalog()),
        "jpab" => Some(crate::jpab::catalog()),
        "sibench" => Some(crate::sibench::catalog()),
        _ => None,
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    pub class: BenchmarkClass,
    pub benchmark: String,
    pub domain: String,
    pub transaction_types: usize,
}

/// Regenerate Table 1 (class / benchmark / application domain).
pub fn table1() -> Vec<Table1Row> {
    all_workloads()
        .iter()
        .map(|w| Table1Row {
            class: w.class(),
            benchmark: w.name().to_string(),
            domain: w.domain().to_string(),
            transaction_types: w.transaction_types().len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_benchmarks() {
        assert_eq!(all_workloads().len(), 15);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> =
            all_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn class_counts_match_table1() {
        let rows = table1();
        let count = |c: BenchmarkClass| rows.iter().filter(|r| r.class == c).count();
        assert_eq!(count(BenchmarkClass::Transactional), 7);
        assert_eq!(count(BenchmarkClass::WebOriented), 4);
        assert_eq!(count(BenchmarkClass::FeatureTesting), 4);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("tpcc").is_some());
        assert!(by_name("TPCC").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_benchmark_has_a_catalog() {
        for w in all_workloads() {
            let cat = catalog_of(w.name()).unwrap_or_else(|| panic!("{} missing catalog", w.name()));
            assert!(!cat.is_empty(), "{} catalog empty", w.name());
        }
    }

    #[test]
    fn every_benchmark_loads_and_runs_every_transaction() {
        use bp_sql::Connection;
        use bp_storage::{Database, Personality};
        use bp_util::rng::Rng;
        for w in all_workloads() {
            let db = Database::new(Personality::test());
            let mut conn = Connection::open(&db);
            let mut rng = Rng::new(0xBEEF);
            let summary = w
                .setup(&mut conn, 0.1, &mut rng)
                .unwrap_or_else(|e| panic!("{} setup failed: {e}", w.name()));
            assert!(summary.rows > 0, "{} loaded no rows", w.name());
            for idx in 0..w.transaction_types().len() {
                for _ in 0..3 {
                    w.execute(idx, &mut conn, &mut rng)
                        .unwrap_or_else(|e| panic!("{} txn {idx} failed: {e}", w.name()));
                    assert!(!conn.in_transaction(), "{} txn {idx} left txn open", w.name());
                }
            }
        }
    }

    #[test]
    fn default_mixtures_valid() {
        for w in all_workloads() {
            let types = w.transaction_types();
            let m = bp_core::Mixture::default_of(&types);
            assert_eq!(m.len(), types.len());
        }
    }
}
