//! AuctionMark: the on-line auction benchmark (Table 1, Transactional).
//!
//! Users, items, bids and comments with the core transaction set of the
//! original workload (a reduced but behaviour-preserving port).

use std::sync::atomic::{AtomicI64, Ordering};

use bp_core::{BenchmarkClass, LoadSummary, TransactionType, TxnOutcome, Workload};
use bp_sql::{Connection, Result as SqlResult, StatementCatalog};
use bp_util::rng::Rng;

use crate::helpers::{p_f, p_i, p_s, run_txn};

const BASE_USERS: i64 = 300;
const BASE_ITEMS: i64 = 500;
const CATEGORIES: i64 = 20;

pub struct AuctionMark {
    users: AtomicI64,
    items: AtomicI64,
    next_bid: AtomicI64,
    next_comment: AtomicI64,
}

impl Default for AuctionMark {
    fn default() -> Self {
        AuctionMark::new()
    }
}

impl AuctionMark {
    pub fn new() -> AuctionMark {
        AuctionMark {
            users: AtomicI64::new(BASE_USERS),
            items: AtomicI64::new(BASE_ITEMS),
            next_bid: AtomicI64::new(0),
            next_comment: AtomicI64::new(0),
        }
    }

    fn user(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.users.load(Ordering::Relaxed).max(1) - 1)
    }

    fn item(&self, rng: &mut Rng) -> i64 {
        rng.int_range(0, self.items.load(Ordering::Relaxed).max(1) - 1)
    }
}

pub fn catalog() -> StatementCatalog {
    let mut cat = StatementCatalog::new();
    cat.define(
        "create_useracct",
        "CREATE TABLE am_user (u_id INT PRIMARY KEY, u_rating INT, u_balance FLOAT, u_created INT)",
    );
    cat.define(
        "create_category",
        "CREATE TABLE am_category (c_id INT PRIMARY KEY, c_name VARCHAR(32))",
    );
    cat.define(
        "create_item",
        "CREATE TABLE am_item (i_id INT PRIMARY KEY, i_u_id INT NOT NULL, i_c_id INT NOT NULL, \
         i_name VARCHAR(64), i_current_price FLOAT, i_num_bids INT, i_status INT, i_end_date INT)",
    );
    cat.define("create_item_seller_idx", "CREATE INDEX idx_item_seller ON am_item (i_u_id)");
    cat.define("create_item_category_idx", "CREATE INDEX idx_item_category ON am_item (i_c_id)");
    cat.define(
        "create_item_bid",
        "CREATE TABLE am_item_bid (ib_id INT PRIMARY KEY, ib_i_id INT NOT NULL, ib_u_id INT NOT NULL, \
         ib_bid FLOAT NOT NULL, ib_created INT)",
    );
    cat.define("create_bid_item_idx", "CREATE INDEX idx_bid_item ON am_item_bid (ib_i_id)");
    cat.define(
        "create_item_comment",
        "CREATE TABLE am_item_comment (ic_id INT PRIMARY KEY, ic_i_id INT NOT NULL, ic_u_id INT NOT NULL, \
         ic_question VARCHAR(128))",
    );
    cat.define("get_item", "SELECT * FROM am_item WHERE i_id = ?");
    cat.define(
        "get_user_info",
        "SELECT u_id, u_rating, u_balance FROM am_user WHERE u_id = ?",
    );
    cat.define("get_user_items", "SELECT i_id, i_name, i_current_price FROM am_item WHERE i_u_id = ? LIMIT 25");
    cat.define(
        "new_bid_check",
        "SELECT i_current_price, i_num_bids, i_status FROM am_item WHERE i_id = ? FOR UPDATE",
    );
    cat
}

impl Workload for AuctionMark {
    fn name(&self) -> &'static str {
        "auctionmark"
    }

    fn class(&self) -> BenchmarkClass {
        BenchmarkClass::Transactional
    }

    fn domain(&self) -> &'static str {
        "On-line Auctions"
    }

    fn transaction_types(&self) -> Vec<TransactionType> {
        vec![
            TransactionType::new("GetItem", 45.0, true),
            TransactionType::new("GetUserInfo", 10.0, true),
            TransactionType::new("NewBid", 20.0, false).with_cost(1.5),
            TransactionType::new("NewItem", 10.0, false),
            TransactionType::new("NewComment", 5.0, false),
            TransactionType::new("CloseAuctions", 10.0, false).with_cost(2.0),
        ]
    }

    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()> {
        let cat = catalog();
        for stmt in [
            "create_useracct",
            "create_category",
            "create_item",
            "create_item_seller_idx",
            "create_item_category_idx",
            "create_item_bid",
            "create_bid_item_idx",
            "create_item_comment",
        ] {
            conn.execute(&cat.resolve(stmt, bp_sql::Dialect::MySql).unwrap(), &[])?;
        }
        Ok(())
    }

    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        let mut rows = 0u64;
        for c in 0..CATEGORIES {
            conn.execute(
                "INSERT INTO am_category VALUES (?, ?)",
                &[p_i(c), p_s(rng.astring(6, 20))],
            )?;
            rows += 1;
        }
        let users = ((BASE_USERS as f64 * scale) as i64).max(10);
        for u in 0..users {
            conn.execute(
                "INSERT INTO am_user VALUES (?, ?, ?, ?)",
                &[p_i(u), p_i(rng.int_range(0, 10_000)), p_f(rng.f64_range(0.0, 500.0)), p_i(0)],
            )?;
            rows += 1;
        }
        let items = ((BASE_ITEMS as f64 * scale) as i64).max(20);
        for i in 0..items {
            conn.execute(
                "INSERT INTO am_item VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                &[
                    p_i(i),
                    p_i(rng.int_range(0, users - 1)),
                    p_i(rng.int_range(0, CATEGORIES - 1)),
                    p_s(rng.astring(10, 40)),
                    p_f(rng.f64_range(1.0, 500.0)),
                    p_i(0),
                    p_i(if rng.bool_with(0.9) { 0 } else { 1 }), // 0=open, 1=closed
                    p_i(rng.int_range(100, 10_000)),
                ],
            )?;
            rows += 1;
        }
        self.users.store(users, Ordering::Relaxed);
        self.items.store(items, Ordering::Relaxed);
        Ok(LoadSummary { tables: 5, rows })
    }

    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome> {
        match txn_idx {
            0 => {
                let i = self.item(rng);
                run_txn(conn, |c| {
                    let rs = c.query("SELECT * FROM am_item WHERE i_id = ?", &[p_i(i)])?;
                    Ok(if rs.is_empty() { TxnOutcome::UserAborted } else { TxnOutcome::Committed })
                })
            }
            1 => {
                let u = self.user(rng);
                run_txn(conn, |c| {
                    c.query("SELECT u_id, u_rating, u_balance FROM am_user WHERE u_id = ?", &[p_i(u)])?;
                    c.query(
                        "SELECT i_id, i_name, i_current_price FROM am_item WHERE i_u_id = ? LIMIT 25",
                        &[p_i(u)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // NewBid: only on open auctions, must beat the current price.
            2 => {
                let i = self.item(rng);
                let u = self.user(rng);
                let bid_id = self.next_bid.fetch_add(1, Ordering::Relaxed);
                run_txn(conn, |c| {
                    let rs = c.query(
                        "SELECT i_current_price, i_status FROM am_item WHERE i_id = ? FOR UPDATE",
                        &[p_i(i)],
                    )?;
                    let Some(price) = rs.get_f64(0, "i_current_price") else {
                        return Ok(TxnOutcome::UserAborted);
                    };
                    if rs.get_int(0, "i_status") != Some(0) {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    let bid = price * 1.05 + 1.0;
                    c.execute(
                        "INSERT INTO am_item_bid VALUES (?, ?, ?, ?, ?)",
                        &[p_i(bid_id), p_i(i), p_i(u), p_f(bid), p_i(0)],
                    )?;
                    c.execute(
                        "UPDATE am_item SET i_current_price = ?, i_num_bids = i_num_bids + 1 WHERE i_id = ?",
                        &[p_f(bid), p_i(i)],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // NewItem.
            3 => {
                let u = self.user(rng);
                let new_id = self.items.fetch_add(1, Ordering::Relaxed);
                let name = rng.astring(10, 40);
                let cat_id = rng.int_range(0, CATEGORIES - 1);
                let price = rng.f64_range(1.0, 100.0);
                run_txn(conn, |c| {
                    c.execute(
                        "INSERT INTO am_item VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        &[
                            p_i(new_id),
                            p_i(u),
                            p_i(cat_id),
                            p_s(name.clone()),
                            p_f(price),
                            p_i(0),
                            p_i(0),
                            p_i(10_000),
                        ],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // NewComment.
            4 => {
                let i = self.item(rng);
                let u = self.user(rng);
                let ic = self.next_comment.fetch_add(1, Ordering::Relaxed);
                let q = rng.astring(20, 100);
                run_txn(conn, |c| {
                    c.execute(
                        "INSERT INTO am_item_comment VALUES (?, ?, ?, ?)",
                        &[p_i(ic), p_i(i), p_i(u), p_s(q.clone())],
                    )?;
                    Ok(TxnOutcome::Committed)
                })
            }
            // CloseAuctions: close a few expiring open auctions and settle
            // the winning bid into the seller's balance.
            5 => {
                run_txn(conn, |c| {
                    let rs = c.query(
                        "SELECT i_id, i_u_id, i_current_price FROM am_item WHERE i_status = 0 \
                         ORDER BY i_end_date LIMIT 3",
                        &[],
                    )?;
                    if rs.is_empty() {
                        return Ok(TxnOutcome::UserAborted);
                    }
                    for r in 0..rs.len() {
                        let i_id = rs.get_int(r, "i_id").unwrap();
                        let seller = rs.get_int(r, "i_u_id").unwrap();
                        let price = rs.get_f64(r, "i_current_price").unwrap_or(0.0);
                        c.execute("UPDATE am_item SET i_status = 1 WHERE i_id = ?", &[p_i(i_id)])?;
                        c.execute(
                            "UPDATE am_user SET u_balance = u_balance + ? WHERE u_id = ?",
                            &[p_f(price), p_i(seller)],
                        )?;
                    }
                    Ok(TxnOutcome::Committed)
                })
            }
            other => panic!("auctionmark has no transaction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::{Database, Personality};

    fn setup() -> (AuctionMark, Connection) {
        let db = Database::new(Personality::test());
        let w = AuctionMark::new();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(1)).unwrap();
        (w, conn)
    }

    #[test]
    fn all_transactions_run() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(2);
        for idx in 0..6 {
            for _ in 0..10 {
                w.execute(idx, &mut conn, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn bids_raise_prices() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(3);
        let before = conn
            .query("SELECT SUM(i_num_bids) AS t FROM am_item", &[])
            .unwrap()
            .get_int(0, "t")
            .unwrap();
        let mut committed = 0;
        for _ in 0..50 {
            if w.execute(2, &mut conn, &mut rng).unwrap() == TxnOutcome::Committed {
                committed += 1;
            }
        }
        let after = conn
            .query("SELECT SUM(i_num_bids) AS t FROM am_item", &[])
            .unwrap()
            .get_int(0, "t")
            .unwrap();
        assert_eq!(after - before, committed);
        assert!(committed > 20);
    }

    #[test]
    fn close_auctions_reduces_open_set() {
        let (w, mut conn) = setup();
        let mut rng = Rng::new(4);
        let open_before = conn
            .query("SELECT COUNT(*) AS n FROM am_item WHERE i_status = 0", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        w.execute(5, &mut conn, &mut rng).unwrap();
        let open_after = conn
            .query("SELECT COUNT(*) AS n FROM am_item WHERE i_status = 0", &[])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert_eq!(open_before - open_after, 3);
    }

    #[test]
    fn weights_sum_to_100() {
        assert!((AuctionMark::new().default_weights().iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_resolves_in_all_dialects() {
        let cat = catalog();
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                bp_sql::parse(&cat.resolve(name, d).unwrap()).unwrap();
            }
        }
    }
}
