//! The chaos controller: the arm/disarm gate the engine probes.
//!
//! Probe sites in the storage engine call [`ChaosController::roll`] (or
//! [`ChaosController::blackout`] in the executor) on their hot path.
//! Disarmed — the permanent state of every run that never touches
//! `POST /chaos` — a probe is a single relaxed atomic load and an
//! immediate return, the same shape as `bp-obs`'s off-mode span gate
//! (the `chaos_gate` bench pins this at <5ns on the commit path).
//!
//! Armed, probe `k` of fault kind `K` injects iff
//!
//! ```text
//! u01(mix64(plan.seed ^ K.salt() ^ k)) < window.intensity
//! ```
//!
//! where `k` is a per-kind monotone counter reset on every arm. The
//! decision depends on nothing but the plan seed and the probe's ordinal,
//! so arming the same plan twice yields the identical injection sequence
//! twice — faults are as reproducible as the workload itself. (Which
//! *operations* the faults land on still depends on thread interleaving;
//! determinism is per probe site, matching the paper's reproducibility
//! story of seeded generators rather than whole-system replay.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use std::sync::Arc;

use bp_obs::{EventJournal, MetricsBuf, MetricsSource, Severity};
use bp_util::json::Json;
use bp_util::rng::mix64;
use bp_util::sync::{CachePadded, RwLock};

use crate::plan::{FaultKind, FaultPlan, ALL_KINDS};

/// Map a hash to a uniform f64 in `[0, 1)` (same 53-bit trick as
/// `Rng::f64`).
#[inline]
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

struct Armed {
    plan: FaultPlan,
    /// The wall instant the plan was armed; window offsets are relative
    /// to this.
    epoch: Instant,
}

/// Point-in-time view of the controller (for `GET /chaos/status`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosStatus {
    pub armed: bool,
    pub plan: Option<String>,
    pub seed: u64,
    pub elapsed_us: u64,
    pub arms: u64,
    /// Per-kind totals, indexed by [`FaultKind::index`].
    pub probes: [u64; 8],
    pub injected: [u64; 8],
}

/// The fault-injection gate. One per [`Database`]; shared with the API
/// layer for runtime arm/disarm and with the registry for metrics.
pub struct ChaosController {
    /// Fast-path gate: false ⇒ every probe returns immediately.
    armed: AtomicBool,
    plan: RwLock<Option<Armed>>,
    /// Monotone probe ordinals per kind — the `k` in the decision hash.
    probes: [CachePadded<AtomicU64>; 8],
    /// Probes that actually injected, per kind.
    injected: [CachePadded<AtomicU64>; 8],
    arms: AtomicU64,
    /// Arm/disarm events land here when attached (cold path only).
    journal: RwLock<Option<Arc<EventJournal>>>,
}

impl Default for ChaosController {
    fn default() -> ChaosController {
        ChaosController::new()
    }
}

impl ChaosController {
    pub fn new() -> ChaosController {
        ChaosController {
            armed: AtomicBool::new(false),
            plan: RwLock::new(None),
            probes: Default::default(),
            injected: Default::default(),
            arms: AtomicU64::new(0),
            journal: RwLock::new(None),
        }
    }

    /// Attach the event journal (arm/disarm events). Post-construction so
    /// shared `Arc<ChaosController>`s can be wired after the fact.
    pub fn set_journal(&self, journal: Arc<EventJournal>) {
        *self.journal.write() = Some(journal);
    }

    /// Arm a plan: reset all probe ordinals (so the injection sequence
    /// restarts from `k = 0`) and open the gate.
    pub fn arm(&self, plan: FaultPlan) {
        let mut slot = self.plan.write();
        for i in 0..8 {
            self.probes[i].store(0, Ordering::Relaxed);
            self.injected[i].store(0, Ordering::Relaxed);
        }
        self.arms.fetch_add(1, Ordering::Relaxed);
        let name = plan.name.clone();
        let windows = plan.windows.len();
        *slot = Some(Armed { plan, epoch: Instant::now() });
        self.armed.store(true, Ordering::Release);
        drop(slot);
        if let Some(j) = self.journal.read().as_ref() {
            j.emit_with(Severity::Warn, "chaos", "chaos_armed", || {
                (
                    format!("fault plan {name} armed ({windows} windows)"),
                    vec![("plan", name.clone()), ("state", "armed".to_string())],
                )
            });
        }
    }

    /// Close the gate and drop the plan. Counters keep their final values
    /// until the next arm so a post-mortem scrape still sees them.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
        let name = self.plan.write().take().map(|a| a.plan.name);
        if let Some(j) = self.journal.read().as_ref() {
            j.emit_with(Severity::Info, "chaos", "chaos_disarmed", || {
                let name = name.clone().unwrap_or_else(|| "none".to_string());
                (
                    format!("fault plan {name} disarmed"),
                    vec![("plan", name), ("state", "disarmed".to_string())],
                )
            });
        }
    }

    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Probe a fault site. Returns `Some(magnitude)` if the active plan
    /// injects a fault of this kind at this probe, `None` otherwise.
    /// Tenant-restricted windows are ignored here (only [`Self::blackout`]
    /// is tenant-aware — the storage engine has no tenant concept).
    #[inline]
    pub fn roll(&self, kind: FaultKind) -> Option<u64> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        self.roll_slow(kind)
    }

    #[cold]
    fn roll_slow(&self, kind: FaultKind) -> Option<u64> {
        let slot = self.plan.read();
        let armed = slot.as_ref()?;
        let rel_us = armed.epoch.elapsed().as_micros() as u64;
        let w = armed
            .plan
            .windows
            .iter()
            .find(|w| w.kind == kind && w.tenant.is_none() && w.active_at(rel_us))?;
        let k = self.probes[kind.index()].fetch_add(1, Ordering::Relaxed);
        if u01(mix64(armed.plan.seed ^ kind.salt() ^ k)) < w.intensity {
            self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
            Some(w.magnitude)
        } else {
            None
        }
    }

    /// Is `tenant` inside an active blackout window? Probes and
    /// injections are counted under [`FaultKind::Blackout`].
    #[inline]
    pub fn blackout(&self, tenant: u16) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        self.blackout_slow(tenant)
    }

    #[cold]
    fn blackout_slow(&self, tenant: u16) -> bool {
        let slot = self.plan.read();
        let Some(armed) = slot.as_ref() else { return false };
        let rel_us = armed.epoch.elapsed().as_micros() as u64;
        let Some(w) = armed.plan.windows.iter().find(|w| {
            w.kind == FaultKind::Blackout
                && w.active_at(rel_us)
                && w.tenant.map(|t| t == tenant).unwrap_or(true)
        }) else {
            return false;
        };
        let idx = FaultKind::Blackout.index();
        let k = self.probes[idx].fetch_add(1, Ordering::Relaxed);
        if u01(mix64(armed.plan.seed ^ FaultKind::Blackout.salt() ^ k)) < w.intensity {
            self.injected[idx].fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Shift the armed epoch into the past by `us` so time-based windows
    /// become active without sleeping. Test/experiment hook only.
    #[doc(hidden)]
    pub fn shift_epoch_back(&self, us: u64) {
        if let Some(armed) = self.plan.write().as_mut() {
            if let Some(e) = armed.epoch.checked_sub(Duration::from_micros(us)) {
                armed.epoch = e;
            }
        }
    }

    pub fn injected_total(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    pub fn probes_total(&self, kind: FaultKind) -> u64 {
        self.probes[kind.index()].load(Ordering::Relaxed)
    }

    pub fn status(&self) -> ChaosStatus {
        let slot = self.plan.read();
        let mut probes = [0u64; 8];
        let mut injected = [0u64; 8];
        for k in ALL_KINDS {
            probes[k.index()] = self.probes[k.index()].load(Ordering::Relaxed);
            injected[k.index()] = self.injected[k.index()].load(Ordering::Relaxed);
        }
        ChaosStatus {
            armed: self.armed.load(Ordering::Relaxed),
            plan: slot.as_ref().map(|a| a.plan.name.clone()),
            seed: slot.as_ref().map(|a| a.plan.seed).unwrap_or(0),
            elapsed_us: slot
                .as_ref()
                .map(|a| a.epoch.elapsed().as_micros() as u64)
                .unwrap_or(0),
            arms: self.arms.load(Ordering::Relaxed),
            probes,
            injected,
        }
    }

    /// JSON body for `GET /chaos/status`.
    pub fn status_json(&self) -> Json {
        let st = self.status();
        let mut per_kind = Json::obj();
        for k in ALL_KINDS {
            per_kind = per_kind.set(
                k.name(),
                Json::obj()
                    .set("probes", st.probes[k.index()])
                    .set("injected", st.injected[k.index()]),
            );
        }
        Json::obj()
            .set("armed", st.armed)
            .set("plan", st.plan.map(Json::Str).unwrap_or(Json::Null))
            .set("seed", st.seed)
            .set("elapsed_us", st.elapsed_us)
            .set("arms", st.arms)
            .set("faults", per_kind)
    }
}

impl MetricsSource for ChaosController {
    fn collect(&self, buf: &mut MetricsBuf) {
        let st = self.status();
        buf.gauge(
            "bp_chaos_armed",
            "1 while a fault plan is armed, else 0.",
            &[],
            if st.armed { 1.0 } else { 0.0 },
        );
        buf.counter(
            "bp_chaos_arms_total",
            "Times a fault plan has been armed.",
            &[],
            st.arms as f64,
        );
        for k in ALL_KINDS {
            let labels = [("kind", k.name())];
            buf.counter(
                "bp_chaos_probes_total",
                "Fault-site probes evaluated, by fault kind.",
                &labels,
                st.probes[k.index()] as f64,
            );
            buf.counter(
                "bp_chaos_injected_total",
                "Faults actually injected, by fault kind.",
                &labels,
                st.injected[k.index()] as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultWindow;

    #[test]
    fn disarmed_probes_are_inert() {
        let c = ChaosController::new();
        for _ in 0..100 {
            assert_eq!(c.roll(FaultKind::FsyncStall), None);
            assert!(!c.blackout(0));
        }
        let st = c.status();
        assert!(!st.armed);
        assert_eq!(st.probes, [0; 8]);
        assert_eq!(st.injected, [0; 8]);
    }

    #[test]
    fn same_seed_reproduces_identical_sequence() {
        let c = ChaosController::new();
        let plan = FaultPlan::scenario("error-burst", 42).unwrap();
        c.arm(plan.clone());
        let first: Vec<bool> =
            (0..500).map(|_| c.roll(FaultKind::InjectedError).is_some()).collect();
        let first_injected = c.injected_total(FaultKind::InjectedError);
        c.disarm();
        c.arm(plan);
        let second: Vec<bool> =
            (0..500).map(|_| c.roll(FaultKind::InjectedError).is_some()).collect();
        assert_eq!(first, second, "same seed, same plan ⇒ same sequence");
        assert_eq!(first_injected, c.injected_total(FaultKind::InjectedError));
        // A different seed gives a different sequence.
        c.arm(FaultPlan::scenario("error-burst", 43).unwrap());
        let third: Vec<bool> =
            (0..500).map(|_| c.roll(FaultKind::InjectedError).is_some()).collect();
        assert_ne!(first, third);
    }

    #[test]
    fn intensity_sets_injection_rate() {
        let c = ChaosController::new();
        c.arm(
            FaultPlan::new("half", 7)
                .with_window(FaultWindow::always(FaultKind::LatencySpike, 0.5, 123)),
        );
        let n = 10_000;
        let hits = (0..n)
            .filter(|_| c.roll(FaultKind::LatencySpike) == Some(123))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
        assert_eq!(c.probes_total(FaultKind::LatencySpike), n as u64);
        assert_eq!(c.injected_total(FaultKind::LatencySpike), hits as u64);
        // Other kinds untouched.
        assert_eq!(c.roll(FaultKind::FsyncStall), None);
        // A kind probe that finds no window does not consume an ordinal.
        assert_eq!(c.probes_total(FaultKind::FsyncStall), 0);
    }

    #[test]
    fn time_windows_gate_injection() {
        let c = ChaosController::new();
        c.arm(FaultPlan::new("late", 1).with_window(FaultWindow {
            kind: FaultKind::FsyncStall,
            start_us: 60_000_000, // 60s in the future
            end_us: 120_000_000,
            intensity: 1.0,
            magnitude: 999,
            tenant: None,
        }));
        assert_eq!(c.roll(FaultKind::FsyncStall), None, "window not yet open");
        c.shift_epoch_back(60_000_000);
        assert_eq!(c.roll(FaultKind::FsyncStall), Some(999), "window open");
        c.shift_epoch_back(120_000_000);
        assert_eq!(c.roll(FaultKind::FsyncStall), None, "window past");
    }

    #[test]
    fn blackout_is_tenant_scoped() {
        let c = ChaosController::new();
        c.arm(FaultPlan::new("b", 5).with_window(FaultWindow {
            kind: FaultKind::Blackout,
            start_us: 0,
            end_us: u64::MAX,
            intensity: 1.0,
            magnitude: 0,
            tenant: Some(1),
        }));
        assert!(c.blackout(1));
        assert!(!c.blackout(0));
        assert!(c.injected_total(FaultKind::Blackout) >= 1);
        // A tenant-less blackout hits everyone.
        c.arm(
            FaultPlan::new("all", 5)
                .with_window(FaultWindow::always(FaultKind::Blackout, 1.0, 0)),
        );
        assert!(c.blackout(0) && c.blackout(7));
        // Tenant-restricted windows never fire through roll().
        c.arm(FaultPlan::new("t", 5).with_window(FaultWindow {
            kind: FaultKind::LatencySpike,
            start_us: 0,
            end_us: u64::MAX,
            intensity: 1.0,
            magnitude: 10,
            tenant: Some(0),
        }));
        assert_eq!(c.roll(FaultKind::LatencySpike), None);
    }

    #[test]
    fn disarm_keeps_counters_until_rearm() {
        let c = ChaosController::new();
        c.arm(
            FaultPlan::new("x", 9)
                .with_window(FaultWindow::always(FaultKind::InjectedError, 1.0, 0)),
        );
        for _ in 0..10 {
            c.roll(FaultKind::InjectedError);
        }
        c.disarm();
        assert!(!c.is_armed());
        assert_eq!(c.injected_total(FaultKind::InjectedError), 10);
        assert_eq!(c.status().plan, None);
        c.arm(
            FaultPlan::new("y", 9)
                .with_window(FaultWindow::always(FaultKind::InjectedError, 1.0, 0)),
        );
        assert_eq!(c.injected_total(FaultKind::InjectedError), 0, "arm resets");
        assert_eq!(c.status().arms, 2);
    }

    #[test]
    fn arm_and_disarm_journaled() {
        let c = ChaosController::new();
        let j = Arc::new(EventJournal::new());
        c.set_journal(j.clone());
        c.arm(FaultPlan::scenario("error-burst", 1).unwrap());
        c.disarm();
        let events = j.all();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].kind, "chaos_armed");
        assert_eq!(events[0].severity, Severity::Warn);
        assert!(events[0].fields.contains(&("plan", "error-burst".to_string())));
        assert_eq!(events[1].kind, "chaos_disarmed");
        assert!(events[1].fields.contains(&("plan", "error-burst".to_string())));
    }

    #[test]
    fn metrics_expose_chaos_counters() {
        let c = ChaosController::new();
        c.arm(
            FaultPlan::new("m", 3)
                .with_window(FaultWindow::always(FaultKind::DeadlockStorm, 1.0, 0)),
        );
        for _ in 0..5 {
            c.roll(FaultKind::DeadlockStorm);
        }
        let mut buf = MetricsBuf::new();
        c.collect(&mut buf);
        let samples = buf.into_samples();
        let find = |name: &str, kind: Option<&str>| {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && kind
                            .map(|k| s.labels.iter().any(|(_, v)| v == k))
                            .unwrap_or(true)
                })
                .unwrap_or_else(|| panic!("{name} {kind:?}"))
        };
        let armed = find("bp_chaos_armed", None);
        assert_eq!(armed.value, bp_obs::MetricValue::Gauge(1.0));
        let injected = find("bp_chaos_injected_total", Some("deadlock_storm"));
        assert_eq!(injected.value, bp_obs::MetricValue::Counter(5.0));
        // All kinds present.
        let kinds = samples
            .iter()
            .filter(|s| s.name == "bp_chaos_injected_total")
            .count();
        assert_eq!(kinds, 8);
    }
}
