//! Fault plans: named, seeded schedules of fault windows.
//!
//! A [`FaultPlan`] is pure data — it says *what* goes wrong, *when*
//! (relative to the moment the plan is armed), *how often* (intensity)
//! and *how hard* (magnitude). It contains no randomness of its own:
//! whether probe `k` of a given fault kind injects is a pure function of
//! `(plan seed, kind, k)` evaluated by the
//! [`ChaosController`](crate::ChaosController), so a plan armed twice with
//! the same seed produces the identical injection sequence twice.

use bp_util::json::Json;

/// The taxonomy of injectable faults.
///
/// Each kind maps to one probe site in the engine or client:
///
/// | kind            | probe site                   | effect                              |
/// |-----------------|------------------------------|-------------------------------------|
/// | `FsyncStall`    | `Session::commit` (WAL sync) | adds `magnitude_us` to commit cost  |
/// | `LatencySpike`  | `Session::charge`            | adds `magnitude_us` to any op cost  |
/// | `InjectedError` | `LockManager::acquire`       | transient retryable `Injected` error|
/// | `DeadlockStorm` | `LockManager::acquire`       | forced wait-die victim abort        |
/// | `Blackout`      | executor (per tenant)        | in-flight txns fail for the window  |
/// | `BufferThrash`  | `Session::touch_page`        | `magnitude` extra page IOs          |
/// | `ServerCrash`   | `Session::commit`            | kills the engine at a crashpoint    |
/// | `PanicStorm`    | executor (worker loop)       | panics the worker mid-transaction   |
///
/// `ServerCrash` uses `magnitude` to pick the crashpoint (`magnitude % 3`):
/// 0 = before the redo append, 1 = after the append but before fsync (torn
/// record), 2 = after fsync (durable but the client sees an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    FsyncStall,
    LatencySpike,
    InjectedError,
    DeadlockStorm,
    Blackout,
    BufferThrash,
    ServerCrash,
    PanicStorm,
}

/// All kinds, for iteration (status/metrics).
pub const ALL_KINDS: [FaultKind; 8] = [
    FaultKind::FsyncStall,
    FaultKind::LatencySpike,
    FaultKind::InjectedError,
    FaultKind::DeadlockStorm,
    FaultKind::Blackout,
    FaultKind::BufferThrash,
    FaultKind::ServerCrash,
    FaultKind::PanicStorm,
];

impl FaultKind {
    /// Stable dense index (counter arrays, metric labels).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultKind::FsyncStall => 0,
            FaultKind::LatencySpike => 1,
            FaultKind::InjectedError => 2,
            FaultKind::DeadlockStorm => 3,
            FaultKind::Blackout => 4,
            FaultKind::BufferThrash => 5,
            FaultKind::ServerCrash => 6,
            FaultKind::PanicStorm => 7,
        }
    }

    /// Per-kind salt folded into the injection hash so two kinds with the
    /// same probe index make independent decisions.
    #[inline]
    pub fn salt(self) -> u64 {
        // Arbitrary odd constants; stable across releases (tests pin the
        // resulting sequences).
        const SALTS: [u64; 8] = [
            0x9E6C_63D0_985E_5341,
            0x51AF_D0C1_6F3B_9A77,
            0xB7E1_5162_8AED_2A6B,
            0x2545_F491_4F6C_DD1D,
            0xDE9F_DE87_31C9_FD45,
            0x8CB9_2BA7_2F3D_8DD7,
            0xA24B_AED4_963E_E407,
            0x6C62_272E_07BB_0142,
        ];
        SALTS[self.index()]
    }

    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FsyncStall => "fsync_stall",
            FaultKind::LatencySpike => "latency_spike",
            FaultKind::InjectedError => "injected_error",
            FaultKind::DeadlockStorm => "deadlock_storm",
            FaultKind::Blackout => "blackout",
            FaultKind::BufferThrash => "buffer_thrash",
            FaultKind::ServerCrash => "server_crash",
            FaultKind::PanicStorm => "panic_storm",
        }
    }

    pub fn from_name(name: &str) -> Option<FaultKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }
}

/// One window of adversity within a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    pub kind: FaultKind,
    /// Window start, µs since the plan was armed.
    pub start_us: u64,
    /// Window end (exclusive), µs since the plan was armed.
    pub end_us: u64,
    /// Probability in `[0, 1]` that a probe inside the window injects.
    pub intensity: f64,
    /// Kind-specific magnitude: µs of stall/spike for `FsyncStall` /
    /// `LatencySpike`, extra page IOs for `BufferThrash`; unused for the
    /// error kinds and `Blackout` (the window itself is the outage).
    pub magnitude: u64,
    /// Restrict the window to one tenant (`Blackout` windows almost always
    /// set this); `None` applies to every tenant.
    pub tenant: Option<u16>,
}

impl FaultWindow {
    /// A window covering the whole run, every tenant.
    pub fn always(kind: FaultKind, intensity: f64, magnitude: u64) -> FaultWindow {
        FaultWindow { kind, start_us: 0, end_us: u64::MAX, intensity, magnitude, tenant: None }
    }

    #[inline]
    pub fn active_at(&self, rel_us: u64) -> bool {
        rel_us >= self.start_us && rel_us < self.end_us
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .set("kind", self.kind.name())
            .set("start_us", self.start_us)
            .set("end_us", self.end_us)
            .set("intensity", self.intensity)
            .set("magnitude", self.magnitude);
        if let Some(t) = self.tenant {
            j = j.set("tenant", t as u64);
        }
        j
    }

    fn from_json(j: &Json) -> Option<FaultWindow> {
        let kind = FaultKind::from_name(j.get("kind")?.as_str()?)?;
        let intensity = j.get("intensity")?.as_f64()?;
        if !(0.0..=1.0).contains(&intensity) {
            return None;
        }
        Some(FaultWindow {
            kind,
            start_us: j.get("start_us").and_then(Json::as_u64).unwrap_or(0),
            end_us: j.get("end_us").and_then(Json::as_u64).unwrap_or(u64::MAX),
            intensity,
            magnitude: j.get("magnitude").and_then(Json::as_u64).unwrap_or(0),
            tenant: j.get("tenant").and_then(Json::as_u64).map(|t| t as u16),
        })
    }
}

/// A named, seeded schedule of fault windows.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub name: String,
    pub seed: u64,
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    pub fn new(name: &str, seed: u64) -> FaultPlan {
        FaultPlan { name: name.to_string(), seed, windows: Vec::new() }
    }

    pub fn with_window(mut self, w: FaultWindow) -> FaultPlan {
        self.windows.push(w);
        self
    }

    /// Build one of the named scenarios (`POST /chaos` accepts these by
    /// name). Returns `None` for an unknown scenario.
    ///
    /// Time-based windows in the stock scenarios sit at `[2s, 4s)` after
    /// arming so a steady run shows a clean before/during/after shape.
    pub fn scenario(name: &str, seed: u64) -> Option<FaultPlan> {
        const S: u64 = 1_000_000; // 1 second in µs
        let plan = FaultPlan::new(name, seed);
        Some(match name {
            // Every commit during the window pays an extra 2ms fsync.
            "fsync-stall" => plan.with_window(FaultWindow {
                kind: FaultKind::FsyncStall,
                start_us: 2 * S,
                end_us: 4 * S,
                intensity: 1.0,
                magnitude: 2_000,
                tenant: None,
            }),
            // 20% of operations pay an extra 5ms.
            "latency-spike" => plan.with_window(FaultWindow {
                kind: FaultKind::LatencySpike,
                start_us: 2 * S,
                end_us: 4 * S,
                intensity: 0.2,
                magnitude: 5_000,
                tenant: None,
            }),
            // 60% of lock acquisitions fail with a transient error for the
            // whole armed period — the breaker-trip workhorse.
            "error-burst" => plan.with_window(FaultWindow::always(
                FaultKind::InjectedError,
                0.6,
                0,
            )),
            // 40% of lock acquisitions abort as forced wait-die victims.
            "deadlock-storm" => plan.with_window(FaultWindow::always(
                FaultKind::DeadlockStorm,
                0.4,
                0,
            )),
            // Tenant 0 blacks out for the window; its in-flight txns fail.
            "blackout" => plan.with_window(FaultWindow {
                kind: FaultKind::Blackout,
                start_us: 2 * S,
                end_us: 4 * S,
                intensity: 1.0,
                magnitude: 0,
                tenant: Some(0),
            }),
            // Every page touch pays 3 extra IOs (cold buffer pool).
            "buffer-thrash" => plan.with_window(FaultWindow {
                kind: FaultKind::BufferThrash,
                start_us: 2 * S,
                end_us: 4 * S,
                intensity: 1.0,
                magnitude: 3,
                tenant: None,
            }),
            // One crash 2s in, at the nastiest crashpoint (torn record).
            // The window is a narrow spike so exactly one commit dies; the
            // recovery supervisor restarts the engine and the run resumes.
            "server-crash" => plan.with_window(FaultWindow {
                kind: FaultKind::ServerCrash,
                start_us: 2 * S,
                end_us: 2 * S + 200_000,
                intensity: 1.0,
                magnitude: 1,
                tenant: None,
            }),
            // 5% of transactions panic their worker thread mid-execution.
            "panic-storm" => plan.with_window(FaultWindow {
                kind: FaultKind::PanicStorm,
                start_us: 2 * S,
                end_us: 4 * S,
                intensity: 0.05,
                magnitude: 0,
                tenant: None,
            }),
            // Everything at once, moderated.
            "meltdown" => plan
                .with_window(FaultWindow::always(FaultKind::FsyncStall, 0.5, 1_000))
                .with_window(FaultWindow::always(FaultKind::LatencySpike, 0.1, 2_000))
                .with_window(FaultWindow::always(FaultKind::InjectedError, 0.3, 0))
                .with_window(FaultWindow::always(FaultKind::DeadlockStorm, 0.2, 0))
                .with_window(FaultWindow::always(FaultKind::BufferThrash, 0.5, 2)),
            _ => return None,
        })
    }

    /// Names accepted by [`FaultPlan::scenario`].
    pub fn scenario_names() -> &'static [&'static str] {
        &[
            "fsync-stall",
            "latency-spike",
            "error-burst",
            "deadlock-storm",
            "blackout",
            "buffer-thrash",
            "server-crash",
            "panic-storm",
            "meltdown",
        ]
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("seed", self.seed)
            .set(
                "windows",
                Json::Arr(self.windows.iter().map(FaultWindow::to_json).collect()),
            )
    }

    /// Parse a plan from JSON (the `POST /chaos` custom-plan form).
    /// Returns `None` on any malformed field.
    pub fn from_json(j: &Json) -> Option<FaultPlan> {
        let name = j.get("name")?.as_str()?.to_string();
        let seed = j.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let mut windows = Vec::new();
        for w in j.get("windows")?.as_arr()? {
            windows.push(FaultWindow::from_json(w)?);
        }
        Some(FaultPlan { name, seed, windows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in ALL_KINDS {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
        // Dense, unique indices and salts.
        let mut idx: Vec<usize> = ALL_KINDS.iter().map(|k| k.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
        let mut salts: Vec<u64> = ALL_KINDS.iter().map(|k| k.salt()).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), 8);
    }

    #[test]
    fn window_activity() {
        let w = FaultWindow {
            kind: FaultKind::FsyncStall,
            start_us: 100,
            end_us: 200,
            intensity: 1.0,
            magnitude: 5,
            tenant: None,
        };
        assert!(!w.active_at(99));
        assert!(w.active_at(100));
        assert!(w.active_at(199));
        assert!(!w.active_at(200));
        assert!(FaultWindow::always(FaultKind::Blackout, 1.0, 0).active_at(u64::MAX - 1));
    }

    #[test]
    fn every_scenario_builds_and_round_trips() {
        for name in FaultPlan::scenario_names() {
            let plan = FaultPlan::scenario(name, 42).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(plan.name, *name);
            assert!(!plan.windows.is_empty(), "{name} has no windows");
            for w in &plan.windows {
                assert!((0.0..=1.0).contains(&w.intensity));
            }
            let back = FaultPlan::from_json(&plan.to_json()).expect("round trip");
            assert_eq!(back, plan);
        }
        assert_eq!(FaultPlan::scenario("unknown", 1), None);
    }

    #[test]
    fn from_json_rejects_malformed() {
        // Missing kind.
        let j = Json::parse(r#"{"name":"x","seed":1,"windows":[{"intensity":0.5}]}"#).unwrap();
        assert_eq!(FaultPlan::from_json(&j), None);
        // Intensity out of range.
        let j = Json::parse(
            r#"{"name":"x","seed":1,"windows":[{"kind":"fsync_stall","intensity":1.5}]}"#,
        )
        .unwrap();
        assert_eq!(FaultPlan::from_json(&j), None);
        // Unknown kind.
        let j =
            Json::parse(r#"{"name":"x","seed":1,"windows":[{"kind":"zap","intensity":0.5}]}"#)
                .unwrap();
        assert_eq!(FaultPlan::from_json(&j), None);
        // Defaults fill in: window with only kind+intensity is always-on.
        let j = Json::parse(
            r#"{"name":"x","seed":7,"windows":[{"kind":"blackout","intensity":1.0,"tenant":3}]}"#,
        )
        .unwrap();
        let plan = FaultPlan::from_json(&j).unwrap();
        assert_eq!(plan.windows[0].tenant, Some(3));
        assert_eq!(plan.windows[0].end_us, u64::MAX);
    }
}
