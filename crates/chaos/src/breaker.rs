//! Client-side resilience: circuit breaker, retry budget, and the knob
//! block that configures both plus backoff/deadlines.
//!
//! The breaker is the executor's admission controller. Workers ask it
//! [`CircuitBreaker::admit`] before executing a request:
//!
//! ```text
//!            failure rate ≥ threshold (or queue > limit)
//!   Closed ──────────────────────────────────────────────▶ Open
//!     ▲                                                      │
//!     │ `half_open_probes` consecutive                       │ cooldown
//!     │ probe successes                                      │ elapsed
//!     │                                                      ▼
//!     └──────────────────────────────────────────────── HalfOpen
//!                         any probe failure ──────▶ back to Open
//! ```
//!
//! While Open, requests are **shed**: fast-failed without executing,
//! counted in their own `shed` bucket (never as errors, never in
//! throughput) so graceful degradation is visible as its own signal.
//! The [`RetryBudget`] is the second amplification guard: a token bucket
//! capping cluster-wide retries per second so that retry storms cannot
//! pile onto an engine that is already down.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use bp_obs::{EventJournal, MetricsBuf, MetricsSource, Severity};
use bp_util::sync::Mutex;

/// Breaker tuning. Defaults are deliberately conservative: a breaker with
/// default config on a healthy run never trips.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Trip when `failures / samples` in the sliding window reaches this.
    pub failure_threshold: f64,
    /// Don't evaluate the threshold until the window holds this many
    /// samples (prevents one early failure from tripping a cold breaker).
    pub min_samples: u32,
    /// Sliding-window size in samples.
    pub window: u32,
    /// How long to stay Open before half-opening, µs.
    pub cooldown_us: u64,
    /// Probes admitted while HalfOpen; that many consecutive successes
    /// re-close the breaker.
    pub half_open_probes: u32,
    /// Trip immediately if the executor queue backlog exceeds this
    /// (0 disables the queue trip).
    pub queue_limit: usize,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 0.5,
            min_samples: 20,
            window: 64,
            cooldown_us: 500_000,
            half_open_probes: 3,
            queue_limit: 0,
        }
    }
}

/// Breaker states; the discriminants are the `bp_resilience_breaker_state`
/// gauge values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BreakerState {
    Closed = 0,
    Open = 1,
    HalfOpen = 2,
}

impl BreakerState {
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    fn from_u8(v: u8) -> BreakerState {
        match v {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Execute normally.
    Allow,
    /// Execute, but this is a HalfOpen recovery probe — its outcome
    /// decides whether the breaker re-closes or re-opens.
    Probe,
    /// Fast-fail without executing; record as `shed`.
    Shed,
}

struct Inner {
    /// Sliding outcome window: `true` = failure. Ring-indexed by `pos`.
    ring: Vec<bool>,
    pos: usize,
    filled: u32,
    failures: u32,
    opened_at_us: u64,
    probes_inflight: u32,
    probe_successes: u32,
}

impl Inner {
    fn reset_window(&mut self) {
        self.ring.iter_mut().for_each(|b| *b = false);
        self.pos = 0;
        self.filled = 0;
        self.failures = 0;
    }

    fn record(&mut self, failure: bool, window: u32) {
        if self.ring.len() < window as usize {
            self.ring.resize(window as usize, false);
        }
        let old = std::mem::replace(&mut self.ring[self.pos], failure);
        self.pos = (self.pos + 1) % window as usize;
        if self.filled < window {
            self.filled += 1;
        } else if old {
            self.failures -= 1;
        }
        if failure {
            self.failures += 1;
        }
    }
}

/// A per-workload (per-tenant) circuit breaker / admission controller.
pub struct CircuitBreaker {
    /// Label on every metric this breaker emits.
    name: String,
    cfg: BreakerConfig,
    /// Fast-path state mirror; authoritative transitions happen under
    /// `inner`'s lock.
    state: AtomicU8,
    inner: Mutex<Inner>,
    shed: AtomicU64,
    /// Transition counts, indexed by destination state.
    transitions: [AtomicU64; 3],
    journal: Option<Arc<EventJournal>>,
}

impl CircuitBreaker {
    pub fn new(name: &str, cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            name: name.to_string(),
            state: AtomicU8::new(BreakerState::Closed as u8),
            inner: Mutex::new(Inner {
                ring: vec![false; cfg.window as usize],
                pos: 0,
                filled: 0,
                failures: 0,
                opened_at_us: 0,
                probes_inflight: 0,
                probe_successes: 0,
            }),
            cfg,
            shed: AtomicU64::new(0),
            transitions: Default::default(),
            journal: None,
        }
    }

    /// Attach the event journal (state-transition events) — builder style
    /// so the plain constructor keeps working everywhere.
    pub fn with_journal(mut self, journal: Arc<EventJournal>) -> CircuitBreaker {
        self.journal = Some(journal);
        self
    }

    #[inline]
    pub fn state(&self) -> BreakerState {
        BreakerState::from_u8(self.state.load(Ordering::Relaxed))
    }

    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub fn transitions_to(&self, to: BreakerState) -> u64 {
        self.transitions[to as usize].load(Ordering::Relaxed)
    }

    fn transition(&self, to: BreakerState) {
        let from = BreakerState::from_u8(self.state.swap(to as u8, Ordering::Relaxed));
        self.transitions[to as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(j) = &self.journal {
            let sev = match to {
                BreakerState::Open => Severity::Error,
                BreakerState::HalfOpen => Severity::Warn,
                BreakerState::Closed => Severity::Info,
            };
            j.emit_with(sev, "chaos", "breaker_transition", || {
                (
                    format!("breaker {} {} -> {}", self.name, from.name(), to.name()),
                    vec![
                        ("workload", self.name.clone()),
                        ("from", from.name().to_string()),
                        ("to", to.name().to_string()),
                    ],
                )
            });
        }
    }

    /// Decide whether to execute a request arriving at `now_us` with the
    /// given executor backlog.
    pub fn admit(&self, now_us: u64, queue_depth: usize) -> Admission {
        match self.state() {
            BreakerState::Closed => {
                if self.cfg.queue_limit > 0 && queue_depth > self.cfg.queue_limit {
                    let mut inner = self.inner.lock();
                    // Re-check under the lock so racing workers trip once.
                    if self.state() == BreakerState::Closed {
                        inner.opened_at_us = now_us;
                        inner.reset_window();
                        self.transition(BreakerState::Open);
                    }
                    drop(inner);
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Admission::Shed;
                }
                Admission::Allow
            }
            BreakerState::Open => {
                let mut inner = self.inner.lock();
                if self.state() == BreakerState::Open
                    && now_us.saturating_sub(inner.opened_at_us) >= self.cfg.cooldown_us
                {
                    inner.probes_inflight = 1;
                    inner.probe_successes = 0;
                    self.transition(BreakerState::HalfOpen);
                    return Admission::Probe;
                }
                drop(inner);
                self.shed.fetch_add(1, Ordering::Relaxed);
                Admission::Shed
            }
            BreakerState::HalfOpen => {
                let mut inner = self.inner.lock();
                if self.state() == BreakerState::HalfOpen
                    && inner.probes_inflight < self.cfg.half_open_probes
                {
                    inner.probes_inflight += 1;
                    return Admission::Probe;
                }
                drop(inner);
                self.shed.fetch_add(1, Ordering::Relaxed);
                Admission::Shed
            }
        }
    }

    /// Report a request that executed and committed.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        match self.state() {
            BreakerState::Closed => {
                let w = self.cfg.window;
                inner.record(false, w);
            }
            BreakerState::HalfOpen => {
                inner.probe_successes += 1;
                if inner.probe_successes >= self.cfg.half_open_probes {
                    inner.reset_window();
                    self.transition(BreakerState::Closed);
                }
            }
            BreakerState::Open => {} // stale in-flight result; ignore
        }
    }

    /// Report a request that executed and failed (exhausted retries,
    /// deadline, or non-retryable error).
    pub fn on_failure(&self, now_us: u64) {
        let mut inner = self.inner.lock();
        match self.state() {
            BreakerState::Closed => {
                let w = self.cfg.window;
                inner.record(true, w);
                if inner.filled >= self.cfg.min_samples
                    && inner.failures as f64 / inner.filled as f64 >= self.cfg.failure_threshold
                {
                    inner.opened_at_us = now_us;
                    inner.reset_window();
                    self.transition(BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                // The engine is still sick: any probe failure re-opens.
                inner.opened_at_us = now_us;
                self.transition(BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }
}

impl MetricsSource for CircuitBreaker {
    fn collect(&self, buf: &mut MetricsBuf) {
        let labels = [("workload", self.name.as_str())];
        buf.gauge(
            "bp_resilience_breaker_state",
            "Breaker state: 0 closed, 1 open, 2 half-open.",
            &labels,
            self.state() as u8 as f64,
        );
        buf.counter(
            "bp_resilience_shed_total",
            "Requests fast-failed by the admission controller.",
            &labels,
            self.shed_total() as f64,
        );
        for st in [BreakerState::Closed, BreakerState::Open, BreakerState::HalfOpen] {
            buf.counter(
                "bp_resilience_breaker_transitions_total",
                "Breaker state transitions, by destination state.",
                &[("workload", self.name.as_str()), ("to", st.name())],
                self.transitions_to(st) as f64,
            );
        }
    }
}

/// Cluster-wide retry token bucket. `take()` spends one token per retry;
/// the executor's manager thread calls `refill()` once per second. With
/// `per_second == 0` the budget is unlimited (the default, preserving
/// pre-resilience behavior).
pub struct RetryBudget {
    per_second: u32,
    tokens: AtomicI64,
}

impl RetryBudget {
    pub fn new(per_second: u32) -> RetryBudget {
        RetryBudget {
            per_second,
            tokens: AtomicI64::new(per_second as i64),
        }
    }

    /// Try to spend one retry token.
    pub fn take(&self) -> bool {
        if self.per_second == 0 {
            return true;
        }
        self.tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                if t > 0 {
                    Some(t - 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Add a second's worth of tokens, capped at two seconds' burst.
    pub fn refill(&self) {
        if self.per_second == 0 {
            return;
        }
        let cap = 2 * self.per_second as i64;
        let _ = self
            .tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some((t + self.per_second as i64).min(cap))
            });
    }

    pub fn available(&self) -> i64 {
        if self.per_second == 0 {
            i64::MAX
        } else {
            self.tokens.load(Ordering::Relaxed)
        }
    }
}

/// The executor's resilience knobs (part of `RunConfig`). Defaults keep
/// every pre-existing run byte-identical except that retry waits are
/// jittered instead of immediate.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// First-retry backoff ceiling, µs (0 disables backoff entirely).
    pub backoff_base_us: u64,
    /// Backoff ceiling cap, µs.
    pub backoff_cap_us: u64,
    /// Per-transaction deadline from first execution attempt, µs
    /// (0 = no deadline).
    pub deadline_us: u64,
    /// Cluster-wide retry budget per second (0 = unlimited).
    pub retry_budget_per_s: u32,
    /// Admission-controller config; `None` runs without a breaker.
    pub breaker: Option<BreakerConfig>,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            backoff_base_us: 100,
            backoff_cap_us: 10_000,
            deadline_us: 0,
            retry_budget_per_s: 0,
            breaker: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 0.5,
            min_samples: 10,
            window: 20,
            cooldown_us: 1_000,
            half_open_probes: 3,
            queue_limit: 0,
        }
    }

    #[test]
    fn healthy_traffic_never_trips() {
        let b = CircuitBreaker::new("w", quick_cfg());
        for i in 0..1_000u64 {
            assert_eq!(b.admit(i, 0), Admission::Allow);
            // 30% failures stays under the 50% threshold at every prefix.
            if i % 10 > 6 {
                b.on_failure(i);
            } else {
                b.on_success();
            }
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.shed_total(), 0);
    }

    #[test]
    fn trips_sheds_half_opens_and_recovers() {
        let b = CircuitBreaker::new("w", quick_cfg());
        // Pure failures trip it at min_samples.
        for i in 0..10u64 {
            assert_eq!(b.admit(i, 0), Admission::Allow);
            b.on_failure(i);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions_to(BreakerState::Open), 1);
        // While Open and inside cooldown: shed.
        assert_eq!(b.admit(500, 0), Admission::Shed);
        assert_eq!(b.admit(900, 0), Admission::Shed);
        assert_eq!(b.shed_total(), 2);
        // Past cooldown (opened at t=9, cooldown 1000): first arrival probes.
        assert_eq!(b.admit(1_200, 0), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Only half_open_probes probes fit; the rest shed.
        assert_eq!(b.admit(1_201, 0), Admission::Probe);
        assert_eq!(b.admit(1_202, 0), Admission::Probe);
        assert_eq!(b.admit(1_203, 0), Admission::Shed);
        // Three successes re-close.
        b.on_success();
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions_to(BreakerState::Closed), 1);
        // Window was reset: one failure doesn't re-trip.
        b.admit(2_000, 0);
        b.on_failure(2_000);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens() {
        let b = CircuitBreaker::new("w", quick_cfg());
        for i in 0..10u64 {
            b.admit(i, 0);
            b.on_failure(i);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(5_000, 0), Admission::Probe);
        b.on_failure(5_000);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions_to(BreakerState::Open), 2);
        // New cooldown runs from the probe failure.
        assert_eq!(b.admit(5_500, 0), Admission::Shed);
        assert_eq!(b.admit(6_100, 0), Admission::Probe);
    }

    #[test]
    fn queue_depth_trips_immediately() {
        let mut cfg = quick_cfg();
        cfg.queue_limit = 100;
        let b = CircuitBreaker::new("w", cfg);
        assert_eq!(b.admit(0, 100), Admission::Allow);
        assert_eq!(b.admit(1, 101), Admission::Shed);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.shed_total(), 1);
    }

    #[test]
    fn sliding_window_forgets_old_failures() {
        let b = CircuitBreaker::new("w", quick_cfg());
        // 9 failures (below min_samples), then a long healthy stretch that
        // evicts them from the 20-wide window.
        for i in 0..9u64 {
            b.admit(i, 0);
            b.on_failure(i);
        }
        for i in 9..29u64 {
            b.admit(i, 0);
            b.on_success();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Window is now all-success; 9 fresh failures put the rate at
        // 9/20 < 0.5: still closed.
        for i in 29..38u64 {
            b.admit(i, 0);
            b.on_failure(i);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // One more tips 10/20 ≥ 0.5.
        b.admit(38, 0);
        b.on_failure(38);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn retry_budget_caps_and_refills() {
        let rb = RetryBudget::new(3);
        assert!(rb.take() && rb.take() && rb.take());
        assert!(!rb.take(), "bucket empty");
        rb.refill();
        assert_eq!(rb.available(), 3);
        rb.refill();
        rb.refill();
        rb.refill();
        assert_eq!(rb.available(), 6, "capped at 2s burst");
        // Zero = unlimited.
        let unlimited = RetryBudget::new(0);
        for _ in 0..10_000 {
            assert!(unlimited.take());
        }
        unlimited.refill();
        assert_eq!(unlimited.available(), i64::MAX);
    }

    #[test]
    fn default_resilience_config_is_passive() {
        let cfg = ResilienceConfig::default();
        assert_eq!(cfg.deadline_us, 0);
        assert_eq!(cfg.retry_budget_per_s, 0);
        assert!(cfg.breaker.is_none());
        assert!(cfg.backoff_base_us > 0, "backoff on by default (satellite 1)");
    }

    #[test]
    fn transitions_journaled_with_from_and_to() {
        let j = Arc::new(EventJournal::new());
        let b = CircuitBreaker::new("w", quick_cfg()).with_journal(j.clone());
        for i in 0..10u64 {
            b.admit(i, 0);
            b.on_failure(i);
        }
        assert_eq!(b.admit(2_000, 0), Admission::Probe);
        b.on_success();
        b.on_success();
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let events = j.all();
        let kinds: Vec<(&str, String)> = events
            .iter()
            .map(|e| (e.kind, e.fields.iter().find(|(k, _)| *k == "to").unwrap().1.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("breaker_transition", "open".to_string()),
                ("breaker_transition", "half_open".to_string()),
                ("breaker_transition", "closed".to_string()),
            ],
            "{events:?}"
        );
        assert_eq!(events[0].severity, Severity::Error);
        assert!(events[0].fields.contains(&("from", "closed".to_string())));
    }

    #[test]
    fn metrics_expose_breaker_series() {
        let b = CircuitBreaker::new("tpcc", quick_cfg());
        for i in 0..10u64 {
            b.admit(i, 0);
            b.on_failure(i);
        }
        b.admit(20, 0); // shed
        let mut buf = MetricsBuf::new();
        b.collect(&mut buf);
        let samples = buf.into_samples();
        let state = samples
            .iter()
            .find(|s| s.name == "bp_resilience_breaker_state")
            .unwrap();
        assert_eq!(state.value, bp_obs::MetricValue::Gauge(1.0), "open = 1");
        assert!(state.labels.iter().any(|(k, v)| k == "workload" && v == "tpcc"));
        let shed = samples
            .iter()
            .find(|s| s.name == "bp_resilience_shed_total")
            .unwrap();
        assert_eq!(shed.value, bp_obs::MetricValue::Counter(1.0));
        let to_open = samples
            .iter()
            .find(|s| {
                s.name == "bp_resilience_breaker_transitions_total"
                    && s.labels.iter().any(|(_, v)| v == "open")
            })
            .unwrap();
        assert_eq!(to_open.value, bp_obs::MetricValue::Counter(1.0));
    }
}
