//! Deterministic fault injection and client-side resilience.
//!
//! The paper's thesis is that a testbed must be able to *change conditions
//! at runtime* and observe how the system reacts. Rate and mixture cover
//! the benign axis; this crate adds adversity:
//!
//! * [`FaultPlan`] — a named, seeded schedule of fault windows (fsync
//!   stalls, latency spikes, transient errors, deadlock storms, per-tenant
//!   blackouts, buffer-pool thrash). Every injection decision is a pure
//!   function of `(plan seed, fault kind, probe index)`, so the same seed
//!   reproduces the identical fault sequence run after run.
//! * [`ChaosController`] — the arm/disarm gate the storage engine probes
//!   on its hot paths. Disarmed, a probe is one relaxed atomic load
//!   (same design as `bp-obs`'s off-mode span gate); armed, it evaluates
//!   the active plan and counts every injected fault per kind.
//! * [`CircuitBreaker`] / [`RetryBudget`] — the client-side half:
//!   a per-tenant admission controller that sheds load (fast-fail, counted
//!   as `shed`, never `failed`) when the failure rate or queue depth
//!   crosses a threshold, then half-opens to probe recovery; plus a
//!   token-bucket retry budget so retries cannot amplify an outage.
//!
//! Both halves export their counters as `bp_chaos_*` / `bp_resilience_*`
//! metrics through `bp-obs`'s [`MetricsSource`](bp_obs::MetricsSource).
//! This crate depends only on `bp-util` and `bp-obs`, so `bp-storage`,
//! `bp-core` and `bp-api` can all depend on it without cycles.

pub mod breaker;
pub mod inject;
pub mod plan;

pub use breaker::{
    Admission, BreakerConfig, BreakerState, CircuitBreaker, ResilienceConfig, RetryBudget,
};
pub use inject::{ChaosController, ChaosStatus};
pub use plan::{FaultKind, FaultPlan, FaultWindow};
