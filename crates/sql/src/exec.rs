//! Statement execution: a lightweight planner plus a row-at-a-time executor
//! over the storage engine.
//!
//! Access-path selection mirrors what a simple OLTP engine does: full
//! primary-key equality → point lookup; equality prefix over the PK or a
//! secondary index → prefix/range scan; otherwise a full table scan. The
//! residual predicate is always re-applied to fetched rows, so plans are
//! purely an optimization.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

use bp_storage::{Column, RowId, Row, Session, Table, TableSchema, Value};

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::expr::{eval, eval_filter, EvalScope};

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    Rows(ResultSet),
    Affected(u64),
    Ddl,
    TxnControl,
}

impl StatementResult {
    pub fn rows(self) -> ResultSet {
        match self {
            StatementResult::Rows(rs) => rs,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    pub fn affected(&self) -> u64 {
        match self {
            StatementResult::Affected(n) => *n,
            StatementResult::Rows(rs) => rs.rows.len() as u64,
            _ => 0,
        }
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Value at (row, column-name).
    pub fn get(&self, row: usize, col: &str) -> Option<&Value> {
        let c = self.col_index(col)?;
        self.rows.get(row)?.get(c)
    }

    pub fn get_int(&self, row: usize, col: &str) -> Option<i64> {
        self.get(row, col)?.as_int()
    }

    pub fn get_f64(&self, row: usize, col: &str) -> Option<f64> {
        self.get(row, col)?.as_float()
    }

    pub fn get_str(&self, row: usize, col: &str) -> Option<&str> {
        self.get(row, col)?.as_str()
    }
}

/// Execute a parsed statement on a session with bound parameters.
///
/// DML/queries require an active transaction; `autocommit` wrapping is the
/// connection layer's job.
pub fn execute(session: &mut Session, stmt: &Statement, params: &[Value]) -> Result<StatementResult> {
    match stmt {
        Statement::CreateTable(ct) => {
            let schema = build_schema(ct)?;
            session.database().create_table(schema)?;
            Ok(StatementResult::Ddl)
        }
        Statement::CreateIndex(ci) => {
            let cols: Vec<&str> = ci.columns.iter().map(String::as_str).collect();
            session
                .database()
                .create_index(&ci.table, &ci.name, &cols, ci.unique)?;
            Ok(StatementResult::Ddl)
        }
        Statement::DropTable { name, if_exists } => {
            match session.database().drop_table(name) {
                Ok(()) => Ok(StatementResult::Ddl),
                Err(bp_storage::StorageError::NoSuchTable(_)) if *if_exists => Ok(StatementResult::Ddl),
                Err(e) => Err(e.into()),
            }
        }
        Statement::Insert(ins) => exec_insert(session, ins, params),
        Statement::Select(sel) => Ok(StatementResult::Rows(exec_select(session, sel, params)?)),
        Statement::Update(u) => exec_update(session, u, params),
        Statement::Delete(d) => exec_delete(session, d, params),
        Statement::Begin => {
            session.begin()?;
            Ok(StatementResult::TxnControl)
        }
        Statement::Commit => {
            session.commit()?;
            Ok(StatementResult::TxnControl)
        }
        Statement::Rollback => {
            session.rollback()?;
            Ok(StatementResult::TxnControl)
        }
    }
}

fn build_schema(ct: &CreateTable) -> Result<TableSchema> {
    let mut columns = Vec::with_capacity(ct.columns.len());
    let mut pk: Vec<String> = ct.primary_key.clone();
    for c in &ct.columns {
        if c.primary_key {
            pk.push(c.name.clone());
        }
        let not_null = c.not_null || c.primary_key || ct.primary_key.iter().any(|p| p.eq_ignore_ascii_case(&c.name));
        columns.push(Column { name: c.name.clone(), ty: c.ty, nullable: !not_null });
    }
    let pk_refs: Vec<&str> = pk.iter().map(String::as_str).collect();
    TableSchema::new(&ct.name, columns, &pk_refs).map_err(Into::into)
}

fn exec_insert(session: &mut Session, ins: &Insert, params: &[Value]) -> Result<StatementResult> {
    let table = session.database().table(&ins.table)?;
    let schema = &table.schema;
    // Map provided column order to schema positions.
    let positions: Vec<usize> = if ins.columns.is_empty() {
        (0..schema.arity()).collect()
    } else {
        ins.columns
            .iter()
            .map(|c| schema.column_index(c).map_err(SqlError::from))
            .collect::<Result<_>>()?
    };
    let scope = EvalScope::empty(params);
    let mut count = 0u64;
    for value_row in &ins.rows {
        if value_row.len() != positions.len() {
            return Err(SqlError::Eval(format!(
                "INSERT has {} values for {} columns",
                value_row.len(),
                positions.len()
            )));
        }
        let mut row = vec![Value::Null; schema.arity()];
        for (expr, &pos) in value_row.iter().zip(&positions) {
            row[pos] = eval(expr, &scope)?;
        }
        session.insert(&table, row)?;
        count += 1;
    }
    Ok(StatementResult::Affected(count))
}

// ---- Access-path planning ----

/// A single-binding predicate analysis: equality and range constraints on
/// columns of one table, extracted from the WHERE conjunction.
struct PredicateInfo {
    /// column position -> constant value (equality)
    eq: HashMap<usize, Value>,
    /// column position -> (lower bound, upper bound)
    ranges: HashMap<usize, (Bound<Value>, Bound<Value>)>,
}

fn analyze_predicates(
    where_clause: Option<&Expr>,
    binding: &str,
    schema: &TableSchema,
    params: &[Value],
) -> Result<PredicateInfo> {
    let mut info = PredicateInfo { eq: HashMap::new(), ranges: HashMap::new() };
    let Some(w) = where_clause else { return Ok(info) };
    let scope = EvalScope::empty(params);
    for conjunct in w.conjuncts() {
        let Expr::Binary { op, left, right } = conjunct else { continue };
        if !op.is_comparison() {
            continue;
        }
        // col OP const  or  const OP col
        let (col, value, op) = match (column_of(left, binding, schema), column_of(right, binding, schema)) {
            (Some(c), None) if is_const(right) => (c, eval(right, &scope)?, *op),
            (None, Some(c)) if is_const(left) => (c, eval(left, &scope)?, flip(*op)),
            _ => continue,
        };
        if value.is_null() {
            continue;
        }
        match op {
            BinOp::Eq => {
                info.eq.insert(col, value);
            }
            BinOp::Lt => {
                set_upper(&mut info, col, Bound::Excluded(value));
            }
            BinOp::LtEq => {
                set_upper(&mut info, col, Bound::Included(value));
            }
            BinOp::Gt => {
                set_lower(&mut info, col, Bound::Excluded(value));
            }
            BinOp::GtEq => {
                set_lower(&mut info, col, Bound::Included(value));
            }
            _ => {}
        }
    }
    Ok(info)
}

fn set_lower(info: &mut PredicateInfo, col: usize, b: Bound<Value>) {
    let entry = info.ranges.entry(col).or_insert((Bound::Unbounded, Bound::Unbounded));
    entry.0 = b;
}

fn set_upper(info: &mut PredicateInfo, col: usize, b: Bound<Value>) {
    let entry = info.ranges.entry(col).or_insert((Bound::Unbounded, Bound::Unbounded));
    entry.1 = b;
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// If `e` is a column of this binding, return its position.
fn column_of(e: &Expr, binding: &str, schema: &TableSchema) -> Option<usize> {
    match e {
        Expr::Column { table, name } => {
            if let Some(t) = table {
                if !t.eq_ignore_ascii_case(binding) {
                    return None;
                }
            }
            schema.column_index(name).ok()
        }
        _ => None,
    }
}

/// Constant in the planning sense: literals and parameters only.
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) | Expr::Param(_) => true,
        Expr::Neg(inner) => is_const(inner),
        _ => false,
    }
}

/// Fetch candidate `(rowid, row)` pairs for one table using the best access
/// path, honoring `for_update` locking.
fn fetch_candidates(
    session: &mut Session,
    table: &Arc<Table>,
    info: &PredicateInfo,
    for_update: bool,
) -> Result<Vec<(RowId, Row)>> {
    let schema = &table.schema;
    const NO_LIMIT: usize = usize::MAX;

    // 1. Full PK equality -> point lookup.
    if schema.has_primary_key() && schema.primary_key.iter().all(|c| info.eq.contains_key(c)) {
        let key: Vec<Value> = schema.primary_key.iter().map(|c| info.eq[c].clone()).collect();
        return Ok(session.read_pk(table, &key, for_update)?.into_iter().collect());
    }

    // 2. Longest equality prefix over PK or a secondary index.
    let mut best: Option<(AccessPath, usize)> = None;
    if schema.has_primary_key() {
        let plen = eq_prefix_len(&schema.primary_key, &info.eq);
        if plen > 0 {
            best = Some((AccessPath::PkPrefix(plen), plen));
        }
    }
    for def in table.index_defs() {
        let plen = eq_prefix_len(&def.key_columns, &info.eq);
        if plen > 0 && best.as_ref().is_none_or(|(_, b)| plen > *b) {
            best = Some((AccessPath::IndexPrefix(def.name.clone(), def.key_columns.clone(), plen), plen));
        }
    }

    let rowids: Vec<RowId> = match best {
        Some((AccessPath::PkPrefix(plen), _)) => {
            let prefix: Vec<Value> = schema.primary_key[..plen]
                .iter()
                .map(|c| info.eq[c].clone())
                .collect();
            table.pk_prefix(&prefix, NO_LIMIT)
        }
        Some((AccessPath::IndexPrefix(name, cols, plen), _)) => {
            let prefix: Vec<Value> = cols[..plen].iter().map(|c| info.eq[c].clone()).collect();
            table.index_prefix(&name, &prefix, NO_LIMIT)?
        }
        None => {
            // 3. Range on the first PK or index column.
            let mut range_ids: Option<Vec<RowId>> = None;
            if schema.has_primary_key() {
                if let Some((lo, hi)) = info.ranges.get(&schema.primary_key[0]) {
                    let lo_k = bound_key(lo);
                    let hi_k = bound_key(hi);
                    range_ids = Some(table.pk_range(as_ref_bound(&lo_k), as_ref_bound(&hi_k), NO_LIMIT));
                }
            }
            if range_ids.is_none() {
                for def in table.index_defs() {
                    if let Some((lo, hi)) = info.ranges.get(&def.key_columns[0]) {
                        let lo_k = bound_key(lo);
                        let hi_k = bound_key(hi);
                        range_ids = Some(table.index_range(
                            &def.name,
                            as_ref_bound(&lo_k),
                            as_ref_bound(&hi_k),
                            NO_LIMIT,
                        )?);
                        break;
                    }
                }
            }
            match range_ids {
                Some(ids) => ids,
                None => {
                    // 4. Full scan.
                    let rows = session.scan(table)?;
                    if for_update {
                        // Re-lock each row exclusively.
                        let mut out = Vec::with_capacity(rows.len());
                        for (rid, _) in rows {
                            if let Some(row) = session.get_row(table, rid, true)? {
                                out.push((rid, row));
                            }
                        }
                        return Ok(out);
                    }
                    return Ok(rows);
                }
            }
        }
    };

    let mut out = Vec::with_capacity(rowids.len());
    for rid in rowids {
        if let Some(row) = session.get_row(table, rid, for_update)? {
            out.push((rid, row));
        }
    }
    Ok(out)
}

enum AccessPath {
    PkPrefix(usize),
    IndexPrefix(String, Vec<usize>, usize),
}

fn eq_prefix_len(key_cols: &[usize], eq: &HashMap<usize, Value>) -> usize {
    key_cols.iter().take_while(|c| eq.contains_key(c)).count()
}

fn bound_key(b: &Bound<Value>) -> Bound<Vec<Value>> {
    match b {
        Bound::Included(v) => Bound::Included(vec![v.clone()]),
        Bound::Excluded(v) => Bound::Excluded(vec![v.clone()]),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn as_ref_bound(b: &Bound<Vec<Value>>) -> Bound<&[Value]> {
    match b {
        Bound::Included(v) => Bound::Included(v.as_slice()),
        Bound::Excluded(v) => Bound::Excluded(v.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

// ---- SELECT ----

struct BoundTable {
    binding: String,
    table: Arc<Table>,
}

fn exec_select(session: &mut Session, sel: &Select, params: &[Value]) -> Result<ResultSet> {
    let Some(from) = &sel.from else {
        // SELECT without FROM: evaluate items once against an empty scope.
        let scope = EvalScope::empty(params);
        let mut columns = Vec::new();
        let mut row = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => return Err(SqlError::Unsupported("* without FROM".into())),
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| format!("col{}", i + 1)));
                    row.push(eval(expr, &scope)?);
                }
            }
        }
        return Ok(ResultSet { columns, rows: vec![row] });
    };

    // Bind tables.
    let mut bound: Vec<BoundTable> = Vec::new();
    let t0 = session.database().table(&from.name)?;
    bound.push(BoundTable { binding: from.binding().to_ascii_lowercase(), table: t0 });
    for j in &sel.joins {
        let t = session.database().table(&j.table.name)?;
        bound.push(BoundTable { binding: j.table.binding().to_ascii_lowercase(), table: t });
    }

    // Fetch the driving table with its single-table predicates.
    let info0 = analyze_predicates(
        sel.where_clause.as_ref(),
        &bound[0].binding,
        &bound[0].table.schema,
        params,
    )?;
    let first = fetch_candidates(session, &bound[0].table, &info0, sel.for_update && bound.len() == 1)?;

    // Working set: one combined row-vector per result tuple.
    let mut tuples: Vec<Vec<Row>> = first.into_iter().map(|(_, r)| vec![r]).collect();

    // Join remaining tables with hash joins over the ON + WHERE equi-conds.
    for (jidx, join) in sel.joins.iter().enumerate() {
        let right = &bound[jidx + 1];
        let left_bindings = &bound[..jidx + 1];
        let equi = find_equi_conditions(join, sel.where_clause.as_ref(), left_bindings, right);

        // Fetch right side (single-table preds considered).
        let mut on_and_where = vec![&join.on];
        if let Some(w) = &sel.where_clause {
            on_and_where.push(w);
        }
        let info_r = analyze_predicates(Some(&join.on), &right.binding, &right.table.schema, params)
            .and_then(|mut i| {
                let extra = analyze_predicates(
                    sel.where_clause.as_ref(),
                    &right.binding,
                    &right.table.schema,
                    params,
                )?;
                i.eq.extend(extra.eq);
                i.ranges.extend(extra.ranges);
                Ok(i)
            })?;
        let right_rows = fetch_candidates(session, &right.table, &info_r, false)?;

        if equi.is_empty() {
            // Cartesian: only sensible for small inputs (comma joins).
            let mut next = Vec::new();
            for t in &tuples {
                for (_, rr) in &right_rows {
                    let mut combined = t.clone();
                    combined.push(rr.clone());
                    next.push(combined);
                }
            }
            tuples = next;
        } else {
            // Build hash table on the right side.
            let mut table_map: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for (_, rr) in &right_rows {
                let key: Vec<Value> = equi.iter().map(|(_, _, rc)| rr[*rc].clone()).collect();
                table_map.entry(key).or_default().push(rr);
            }
            let mut next = Vec::new();
            for t in &tuples {
                let key: Vec<Value> = equi
                    .iter()
                    .map(|(bi, lc, _)| t[*bi][*lc].clone())
                    .collect();
                if let Some(matches) = table_map.get(&key) {
                    for rr in matches {
                        let mut combined = t.clone();
                        combined.push((*rr).clone());
                        next.push(combined);
                    }
                }
            }
            tuples = next;
        }
    }

    // Apply full WHERE + (non-equi parts of) ON.
    let bindings: Vec<(String, &TableSchema)> = bound
        .iter()
        .map(|b| (b.binding.clone(), &b.table.schema))
        .collect();
    let mut filtered: Vec<Vec<Row>> = Vec::with_capacity(tuples.len());
    for t in tuples {
        let rows: Vec<&Row> = t.iter().collect();
        let scope = EvalScope::multi(bindings.clone(), rows, params);
        let mut keep = true;
        for join in &sel.joins {
            if !eval_filter(&join.on, &scope)? {
                keep = false;
                break;
            }
        }
        if keep {
            if let Some(w) = &sel.where_clause {
                keep = eval_filter(w, &scope)?;
            }
        }
        if keep {
            filtered.push(t);
        }
    }

    // Aggregation?
    let has_agg = sel
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.has_aggregate()))
        || !sel.group_by.is_empty();

    let (columns, mut rows) = if has_agg {
        aggregate(sel, &bindings, &filtered, params)?
    } else {
        project(sel, &bound, &bindings, &filtered, params)?
    };

    // ORDER BY: prefer output columns (aliases), else evaluate per tuple.
    if !sel.order_by.is_empty() {
        sort_rows(sel, &columns, &mut rows, &bindings, &filtered, has_agg, params)?;
    }

    // LIMIT.
    if let Some(limit_expr) = &sel.limit {
        let scope = EvalScope::empty(params);
        let n = eval(limit_expr, &scope)?
            .as_int()
            .ok_or_else(|| SqlError::Eval("LIMIT must be an integer".into()))?;
        rows.truncate(n.max(0) as usize);
    }

    Ok(ResultSet { columns, rows })
}

/// Equi-join conditions `(left_binding_index, left_col, right_col)` between
/// the already-joined bindings and the incoming right table.
fn find_equi_conditions(
    join: &Join,
    where_clause: Option<&Expr>,
    left_bindings: &[BoundTable],
    right: &BoundTable,
) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    let mut sources: Vec<&Expr> = join.on.conjuncts();
    if let Some(w) = where_clause {
        sources.extend(w.conjuncts());
    }
    for e in sources {
        let Expr::Binary { op: BinOp::Eq, left, right: r } = e else { continue };
        for (a, b) in [(left, r), (r, left)] {
            let Some(rc) = column_of(a, &right.binding, &right.table.schema) else { continue };
            // Qualified reference required to bind to the right table when
            // ambiguity is possible; column_of handles unqualified too, so
            // check the other side binds to some left table.
            for (bi, lb) in left_bindings.iter().enumerate() {
                if let Some(lc) = column_of(b, &lb.binding, &lb.table.schema) {
                    // Avoid self-binding when both sides resolve to right.
                    if let Expr::Column { table: Some(t), .. } = &**b {
                        if t.eq_ignore_ascii_case(&right.binding) {
                            continue;
                        }
                    }
                    out.push((bi, lc, rc));
                    break;
                }
            }
            break;
        }
    }
    out
}

fn project(
    sel: &Select,
    bound: &[BoundTable],
    bindings: &[(String, &TableSchema)],
    tuples: &[Vec<Row>],
    params: &[Value],
) -> Result<(Vec<String>, Vec<Row>)> {
    // Column headers.
    let mut columns = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for b in bound {
                    for c in &b.table.schema.columns {
                        columns.push(c.name.clone());
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    _ => format!("col{}", i + 1),
                });
                columns.push(name);
            }
        }
    }
    let mut rows = Vec::with_capacity(tuples.len());
    for t in tuples {
        let trows: Vec<&Row> = t.iter().collect();
        let scope = EvalScope::multi(bindings.to_vec(), trows, params);
        let mut out = Vec::with_capacity(columns.len());
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    for r in t {
                        out.extend(r.iter().cloned());
                    }
                }
                SelectItem::Expr { expr, .. } => out.push(eval(expr, &scope)?),
            }
        }
        rows.push(out);
    }
    Ok((columns, rows))
}

// ---- Aggregation ----

#[derive(Debug, Clone)]
struct Accumulator {
    count: u64,
    sum: f64,
    sum_i: i64,
    int_only: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<std::collections::BTreeSet<Value>>,
}

impl Accumulator {
    fn new(distinct: bool) -> Accumulator {
        Accumulator {
            count: 0,
            sum: 0.0,
            sum_i: 0,
            int_only: true,
            min: None,
            max: None,
            distinct: if distinct { Some(Default::default()) } else { None },
        }
    }

    fn add(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        if let Some(set) = &mut self.distinct {
            if !set.insert(v.clone()) {
                return;
            }
        }
        self.count += 1;
        match v {
            Value::Int(i) => {
                self.sum += *i as f64;
                self.sum_i = self.sum_i.wrapping_add(*i);
            }
            Value::Float(f) => {
                self.sum += f;
                self.int_only = false;
            }
            _ => self.int_only = false,
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
    }

    fn result(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.int_only {
                    Value::Int(self.sum_i)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Collect all aggregate sub-expressions of an expression.
fn collect_aggs<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Agg { .. } => out.push(e),
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Neg(x) | Expr::Not(x) => collect_aggs(x, out),
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for x in list {
                collect_aggs(x, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggs(expr, out);
            collect_aggs(low, out);
            collect_aggs(high, out);
        }
        Expr::Func { args, .. } => {
            for x in args {
                collect_aggs(x, out);
            }
        }
        _ => {}
    }
}

/// Substitute computed aggregate values into an expression, then evaluate.
fn eval_with_aggs(
    e: &Expr,
    agg_values: &HashMap<String, Value>,
    group_scope: &EvalScope<'_>,
) -> Result<Value> {
    match e {
        Expr::Agg { .. } => {
            let key = format!("{e:?}");
            agg_values
                .get(&key)
                .cloned()
                .ok_or_else(|| SqlError::Eval("aggregate not computed".into()))
        }
        Expr::Binary { op, left, right } => {
            // Rebuild as literals and reuse scalar eval for operator logic.
            let l = eval_with_aggs(left, agg_values, group_scope)?;
            let r = eval_with_aggs(right, agg_values, group_scope)?;
            let rebuilt = Expr::Binary {
                op: *op,
                left: Box::new(Expr::Lit(l)),
                right: Box::new(Expr::Lit(r)),
            };
            eval(&rebuilt, group_scope)
        }
        Expr::Neg(x) => {
            let v = eval_with_aggs(x, agg_values, group_scope)?;
            eval(&Expr::Neg(Box::new(Expr::Lit(v))), group_scope)
        }
        Expr::Func { name, args } => {
            let vals = args
                .iter()
                .map(|a| eval_with_aggs(a, agg_values, group_scope).map(Expr::Lit))
                .collect::<Result<Vec<_>>>()?;
            eval(&Expr::Func { name: name.clone(), args: vals }, group_scope)
        }
        other => eval(other, group_scope),
    }
}

fn aggregate(
    sel: &Select,
    bindings: &[(String, &TableSchema)],
    tuples: &[Vec<Row>],
    params: &[Value],
) -> Result<(Vec<String>, Vec<Row>)> {
    // Gather all aggregate expressions used anywhere in items/order-by.
    let mut agg_exprs: Vec<&Expr> = Vec::new();
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_exprs);
        }
    }
    for o in &sel.order_by {
        collect_aggs(&o.expr, &mut agg_exprs);
    }
    // Deduplicate by structure.
    let mut seen = std::collections::HashSet::new();
    agg_exprs.retain(|e| seen.insert(format!("{e:?}")));

    // Group tuples.
    type GroupKey = Vec<Value>;
    let mut groups: Vec<(GroupKey, Vec<Accumulator>, Vec<Row>)> = Vec::new();
    let mut group_index: HashMap<GroupKey, usize> = HashMap::new();

    for t in tuples {
        let trows: Vec<&Row> = t.iter().collect();
        let scope = EvalScope::multi(bindings.to_vec(), trows, params);
        let key: GroupKey = sel
            .group_by
            .iter()
            .map(|g| eval(g, &scope))
            .collect::<Result<_>>()?;
        let gi = *group_index.entry(key.clone()).or_insert_with(|| {
            groups.push((
                key.clone(),
                agg_exprs
                    .iter()
                    .map(|e| match e {
                        Expr::Agg { distinct, .. } => Accumulator::new(*distinct),
                        _ => Accumulator::new(false),
                    })
                    .collect(),
                t.clone(),
            ));
            groups.len() - 1
        });
        for (ai, aexpr) in agg_exprs.iter().enumerate() {
            let Expr::Agg { arg, .. } = aexpr else { continue };
            let v = match arg {
                None => Value::Int(1), // COUNT(*)
                Some(a) => eval(a, &scope)?,
            };
            groups[gi].1[ai].add(&v);
        }
    }

    // Global aggregate over an empty input still yields one row.
    if groups.is_empty() && sel.group_by.is_empty() {
        groups.push((
            Vec::new(),
            agg_exprs
                .iter()
                .map(|e| match e {
                    Expr::Agg { distinct, .. } => Accumulator::new(*distinct),
                    _ => Accumulator::new(false),
                })
                .collect(),
            Vec::new(),
        ));
    }

    // Headers.
    let mut columns = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(SqlError::Unsupported("* with GROUP BY".into()));
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    _ => format!("col{}", i + 1),
                });
                columns.push(name);
            }
        }
    }

    // Emit one row per group.
    let empty_rows: Vec<Row> = bindings.iter().map(|(_, s)| vec![Value::Null; s.arity()]).collect();
    let mut rows = Vec::with_capacity(groups.len());
    for (_, accs, representative) in &groups {
        let rep: &Vec<Row> = if representative.is_empty() { &empty_rows } else { representative };
        let trows: Vec<&Row> = rep.iter().collect();
        let scope = EvalScope::multi(bindings.to_vec(), trows, params);
        let mut agg_values = HashMap::new();
        for (ai, aexpr) in agg_exprs.iter().enumerate() {
            let Expr::Agg { func, .. } = aexpr else { continue };
            agg_values.insert(format!("{aexpr:?}"), accs[ai].result(*func));
        }
        let mut out = Vec::with_capacity(sel.items.len());
        for item in &sel.items {
            let SelectItem::Expr { expr, .. } = item else { unreachable!() };
            out.push(eval_with_aggs(expr, &agg_values, &scope)?);
        }
        rows.push(out);
    }
    Ok((columns, rows))
}

#[allow(clippy::too_many_arguments)]
fn sort_rows(
    sel: &Select,
    columns: &[String],
    rows: &mut [Row],
    bindings: &[(String, &TableSchema)],
    tuples: &[Vec<Row>],
    has_agg: bool,
    params: &[Value],
) -> Result<()> {
    // Build sort keys per output row.
    let mut keys: Vec<Vec<(Value, bool)>> = Vec::with_capacity(rows.len());
    for (ri, row) in rows.iter().enumerate() {
        let mut key = Vec::with_capacity(sel.order_by.len());
        for ob in &sel.order_by {
            // 1. Output column by name/alias (qualification is dropped for
            //    the lookup: in aggregate queries the output is the only
            //    scope the sort can see).
            let v = if let Expr::Column { name, .. } = &ob.expr {
                columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(name))
                    .map(|ci| row[ci].clone())
            } else {
                None
            };
            let v = match v {
                Some(v) => v,
                None if !has_agg && ri < tuples.len() => {
                    let trows: Vec<&Row> = tuples[ri].iter().collect();
                    let scope = EvalScope::multi(bindings.to_vec(), trows, params);
                    eval(&ob.expr, &scope)?
                }
                None => {
                    return Err(SqlError::Unsupported(
                        "ORDER BY must reference output columns in aggregate queries".into(),
                    ))
                }
            };
            key.push((v, ob.desc));
        }
        keys.push(key);
    }
    // Sort rows by keys (stable).
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| {
        for ((va, desc), (vb, _)) in keys[a].iter().zip(&keys[b]) {
            let ord = va.cmp(vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let sorted: Vec<Row> = order.iter().map(|&i| rows[i].clone()).collect();
    rows.clone_from_slice(&sorted);
    Ok(())
}

// ---- UPDATE / DELETE ----

fn exec_update(session: &mut Session, u: &Update, params: &[Value]) -> Result<StatementResult> {
    let table = session.database().table(&u.table)?;
    let info = analyze_predicates(u.where_clause.as_ref(), &u.table, &table.schema, params)?;
    let candidates = fetch_candidates(session, &table, &info, true)?;
    let set_positions: Vec<(usize, &Expr)> = u
        .sets
        .iter()
        .map(|(c, e)| table.schema.column_index(c).map(|i| (i, e)).map_err(SqlError::from))
        .collect::<Result<_>>()?;
    let binding = u.table.to_ascii_lowercase();
    let mut count = 0u64;
    for (rid, row) in candidates {
        let scope = EvalScope::single(&binding, &table.schema, &row, params);
        if let Some(w) = &u.where_clause {
            if !eval_filter(w, &scope)? {
                continue;
            }
        }
        let mut new_row = row.clone();
        for (pos, expr) in &set_positions {
            new_row[*pos] = eval(expr, &scope)?;
        }
        session.update(&table, rid, new_row)?;
        count += 1;
    }
    Ok(StatementResult::Affected(count))
}

fn exec_delete(session: &mut Session, d: &Delete, params: &[Value]) -> Result<StatementResult> {
    let table = session.database().table(&d.table)?;
    let info = analyze_predicates(d.where_clause.as_ref(), &d.table, &table.schema, params)?;
    let candidates = fetch_candidates(session, &table, &info, true)?;
    let binding = d.table.to_ascii_lowercase();
    let mut count = 0u64;
    for (rid, row) in candidates {
        let scope = EvalScope::single(&binding, &table.schema, &row, params);
        if let Some(w) = &d.where_clause {
            if !eval_filter(w, &scope)? {
                continue;
            }
        }
        session.delete(&table, rid)?;
        count += 1;
    }
    Ok(StatementResult::Affected(count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::Connection;
    use bp_storage::{Database, Personality};

    fn conn() -> Connection {
        let db = Database::new(Personality::test());
        let mut c = Connection::open(&db);
        c.execute_batch(
            "CREATE TABLE item (i_id INT PRIMARY KEY, i_name VARCHAR(24), i_price FLOAT, i_cat INT);
             CREATE INDEX item_cat ON item (i_cat);
             CREATE TABLE sale (s_id INT PRIMARY KEY, s_item INT, s_qty INT);
             CREATE INDEX sale_item ON sale (s_item);",
        )
        .unwrap();
        for i in 0..50i64 {
            c.execute(
                "INSERT INTO item VALUES (?, ?, ?, ?)",
                &[
                    Value::Int(i),
                    Value::Str(format!("item{i}")),
                    Value::Float(i as f64 * 1.5),
                    Value::Int(i % 5),
                ],
            )
            .unwrap();
        }
        for s in 0..100i64 {
            c.execute(
                "INSERT INTO sale VALUES (?, ?, ?)",
                &[Value::Int(s), Value::Int(s % 50), Value::Int(1 + s % 3)],
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn point_lookup_by_pk() {
        let mut c = conn();
        let rs = c.query("SELECT i_name FROM item WHERE i_id = 7", &[]).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get_str(0, "i_name"), Some("item7"));
    }

    #[test]
    fn secondary_index_lookup() {
        let mut c = conn();
        let rs = c.query("SELECT i_id FROM item WHERE i_cat = 2", &[]).unwrap();
        assert_eq!(rs.len(), 10);
    }

    #[test]
    fn range_scan_on_pk() {
        let mut c = conn();
        let rs = c
            .query("SELECT i_id FROM item WHERE i_id >= 10 AND i_id < 20", &[])
            .unwrap();
        assert_eq!(rs.len(), 10);
    }

    #[test]
    fn full_scan_with_residual_filter() {
        let mut c = conn();
        let rs = c
            .query("SELECT i_id FROM item WHERE i_name LIKE 'item1%'", &[])
            .unwrap();
        // item1, item10..19
        assert_eq!(rs.len(), 11);
    }

    #[test]
    fn order_by_and_limit() {
        let mut c = conn();
        let rs = c
            .query("SELECT i_id FROM item ORDER BY i_id DESC LIMIT 3", &[])
            .unwrap();
        let ids: Vec<i64> = (0..3).map(|r| rs.get_int(r, "i_id").unwrap()).collect();
        assert_eq!(ids, vec![49, 48, 47]);
    }

    #[test]
    fn order_by_two_keys() {
        let mut c = conn();
        let rs = c
            .query("SELECT i_cat, i_id FROM item ORDER BY i_cat, i_id DESC LIMIT 2", &[])
            .unwrap();
        assert_eq!(rs.get_int(0, "i_cat"), Some(0));
        assert_eq!(rs.get_int(0, "i_id"), Some(45));
        assert_eq!(rs.get_int(1, "i_id"), Some(40));
    }

    #[test]
    fn global_aggregates() {
        let mut c = conn();
        let rs = c
            .query(
                "SELECT COUNT(*) AS n, SUM(i_cat) AS s, AVG(i_price) AS a, MIN(i_id) AS lo, MAX(i_id) AS hi FROM item",
                &[],
            )
            .unwrap();
        assert_eq!(rs.get_int(0, "n"), Some(50));
        assert_eq!(rs.get_int(0, "s"), Some(100)); // 10 * (0+1+2+3+4)
        assert_eq!(rs.get_int(0, "lo"), Some(0));
        assert_eq!(rs.get_int(0, "hi"), Some(49));
        let avg = rs.get_f64(0, "a").unwrap();
        assert!((avg - 36.75).abs() < 1e-9, "{avg}");
    }

    #[test]
    fn aggregate_on_empty_input_yields_row() {
        let mut c = conn();
        let rs = c
            .query("SELECT COUNT(*) AS n, SUM(i_id) AS s FROM item WHERE i_id > 1000", &[])
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get_int(0, "n"), Some(0));
        assert_eq!(rs.get(0, "s"), Some(&Value::Null));
    }

    #[test]
    fn group_by_with_order() {
        let mut c = conn();
        let rs = c
            .query(
                "SELECT i_cat, COUNT(*) AS n FROM item GROUP BY i_cat ORDER BY i_cat",
                &[],
            )
            .unwrap();
        assert_eq!(rs.len(), 5);
        for r in 0..5 {
            assert_eq!(rs.get_int(r, "i_cat"), Some(r as i64));
            assert_eq!(rs.get_int(r, "n"), Some(10));
        }
    }

    #[test]
    fn aggregate_arithmetic() {
        let mut c = conn();
        let rs = c
            .query("SELECT SUM(s_qty) / COUNT(*) AS avg_qty FROM sale", &[])
            .unwrap();
        assert_eq!(rs.get_int(0, "avg_qty"), Some(1)); // (1+2+3)*33ish / 100 -> int div
    }

    #[test]
    fn count_distinct() {
        let mut c = conn();
        let rs = c.query("SELECT COUNT(DISTINCT i_cat) AS n FROM item", &[]).unwrap();
        assert_eq!(rs.get_int(0, "n"), Some(5));
    }

    #[test]
    fn join_with_index() {
        let mut c = conn();
        let rs = c
            .query(
                "SELECT s.s_id, i.i_name FROM sale s JOIN item i ON s.s_item = i.i_id WHERE i.i_cat = 1 ORDER BY s.s_id",
                &[],
            )
            .unwrap();
        // 10 items in cat 1, each sold twice.
        assert_eq!(rs.len(), 20);
        assert!(rs.get_str(0, "i_name").unwrap().starts_with("item"));
    }

    #[test]
    fn join_aggregate() {
        let mut c = conn();
        let rs = c
            .query(
                "SELECT i.i_cat, SUM(s.s_qty) AS total FROM sale s JOIN item i ON s.s_item = i.i_id GROUP BY i.i_cat ORDER BY i_cat",
                &[],
            )
            .unwrap();
        assert_eq!(rs.len(), 5);
        let grand: i64 = (0..5).map(|r| rs.get_int(r, "total").unwrap()).sum();
        let check = c.query("SELECT SUM(s_qty) AS t FROM sale", &[]).unwrap();
        assert_eq!(grand, check.get_int(0, "t").unwrap());
    }

    #[test]
    fn comma_join_with_where() {
        let mut c = conn();
        let rs = c
            .query(
                "SELECT COUNT(*) AS n FROM sale s, item i WHERE s.s_item = i.i_id AND i.i_cat = 0",
                &[],
            )
            .unwrap();
        assert_eq!(rs.get_int(0, "n"), Some(20));
    }

    #[test]
    fn update_with_expression() {
        let mut c = conn();
        let n = c
            .execute("UPDATE item SET i_price = i_price * 2 WHERE i_cat = 0", &[])
            .unwrap()
            .affected();
        assert_eq!(n, 10);
        let rs = c.query("SELECT i_price FROM item WHERE i_id = 5", &[]).unwrap();
        assert_eq!(rs.get_f64(0, "i_price"), Some(15.0));
    }

    #[test]
    fn update_by_pk_single_row() {
        let mut c = conn();
        let n = c
            .execute("UPDATE item SET i_name = ? WHERE i_id = ?", &[Value::Str("renamed".into()), Value::Int(3)])
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        assert_eq!(
            c.query("SELECT i_name FROM item WHERE i_id = 3", &[]).unwrap().get_str(0, "i_name"),
            Some("renamed")
        );
    }

    #[test]
    fn delete_rows() {
        let mut c = conn();
        let n = c.execute("DELETE FROM sale WHERE s_qty = 3", &[]).unwrap().affected();
        assert!(n > 0);
        let rs = c.query("SELECT COUNT(*) AS n FROM sale", &[]).unwrap();
        assert_eq!(rs.get_int(0, "n"), Some(100 - n as i64));
    }

    #[test]
    fn select_without_from() {
        let mut c = conn();
        let rs = c.query("SELECT 1 + 1 AS two, 'x' AS s", &[]).unwrap();
        assert_eq!(rs.get_int(0, "two"), Some(2));
        assert_eq!(rs.get_str(0, "s"), Some("x"));
    }

    #[test]
    fn wildcard_projection() {
        let mut c = conn();
        let rs = c.query("SELECT * FROM item WHERE i_id = 1", &[]).unwrap();
        assert_eq!(rs.columns, vec!["i_id", "i_name", "i_price", "i_cat"]);
        assert_eq!(rs.rows[0].len(), 4);
    }

    #[test]
    fn in_list_filter() {
        let mut c = conn();
        let rs = c
            .query("SELECT i_id FROM item WHERE i_id IN (1, 2, 99)", &[])
            .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn composite_index_prefix_used() {
        let db = Database::new(Personality::test());
        let mut c = Connection::open(&db);
        c.execute_batch(
            "CREATE TABLE ol (o INT, n INT, qty INT, PRIMARY KEY (o, n));",
        )
        .unwrap();
        for o in 0..10i64 {
            for n in 0..5i64 {
                c.execute("INSERT INTO ol VALUES (?, ?, ?)", &[Value::Int(o), Value::Int(n), Value::Int(o * n)])
                    .unwrap();
            }
        }
        let rs = c.query("SELECT COUNT(*) AS c FROM ol WHERE o = 3", &[]).unwrap();
        assert_eq!(rs.get_int(0, "c"), Some(5));
        let rs = c.query("SELECT qty FROM ol WHERE o = 3 AND n = 4", &[]).unwrap();
        assert_eq!(rs.get_int(0, "qty"), Some(12));
    }

    #[test]
    fn for_update_locks_rows() {
        let db = Database::new(Personality::test());
        let mut c = Connection::open(&db);
        c.execute_batch("CREATE TABLE t (id INT PRIMARY KEY, v INT);").unwrap();
        c.execute("INSERT INTO t VALUES (1, 0)", &[]).unwrap();
        c.begin().unwrap();
        c.query("SELECT * FROM t WHERE id = 1 FOR UPDATE", &[]).unwrap();
        // A younger writer must fail (wait-die).
        let mut c2 = Connection::open(&db);
        c2.begin().unwrap();
        let err = c2.execute("UPDATE t SET v = 9 WHERE id = 1", &[]).unwrap_err();
        assert!(err.is_retryable());
        c.commit().unwrap();
    }

    #[test]
    fn update_where_no_match() {
        let mut c = conn();
        let n = c.execute("UPDATE item SET i_cat = 9 WHERE i_id = 12345", &[]).unwrap().affected();
        assert_eq!(n, 0);
    }
}
