//! SQL-layer errors.

use std::fmt;

use bp_storage::StorageError;

#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Syntax error.
    Parse(String),
    /// Statement is valid SQL but outside the supported subset.
    Unsupported(String),
    /// Error from the storage engine (lock conflicts, constraints, ...).
    Storage(StorageError),
    /// Wrong number of bound parameters.
    ParamCount { expected: usize, got: usize },
    /// Runtime expression-evaluation error.
    Eval(String),
    /// Unknown column/table reference at bind time.
    Binding(String),
}

impl SqlError {
    /// True when the enclosing transaction was aborted but may be retried.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SqlError::Storage(e) if e.is_retryable())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "syntax error: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::ParamCount { expected, got } => {
                write!(f, "expected {expected} parameters, got {got}")
            }
            SqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SqlError::Binding(m) => write!(f, "unknown reference: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> SqlError {
        SqlError::Storage(e)
    }
}

pub type Result<T> = std::result::Result<T, SqlError>;
