//! Recursive-descent parser for the supported SQL subset.

use bp_storage::{DataType, Value};

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::token::{lex, Token};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat_semi();
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!("unexpected tokens after statement: {:?}", p.peek())));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_semi(&mut self) {
        while self.eat(&Token::Semicolon) {}
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.kw("create") {
            if self.kw("table") {
                return self.create_table();
            }
            let unique = self.kw("unique");
            if self.kw("index") {
                return self.create_index(unique);
            }
            return Err(SqlError::Parse("expected TABLE or [UNIQUE] INDEX after CREATE".into()));
        }
        if self.kw("drop") {
            self.expect_kw("table")?;
            let if_exists = if self.kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.kw("insert") {
            return self.insert();
        }
        if self.kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.kw("update") {
            return self.update();
        }
        if self.kw("delete") {
            return self.delete();
        }
        if self.kw("begin") || self.kw("start") {
            // allow BEGIN [TRANSACTION|WORK] / START TRANSACTION
            let _ = self.kw("transaction") || self.kw("work");
            return Ok(Statement::Begin);
        }
        if self.kw("commit") {
            let _ = self.kw("work");
            return Ok(Statement::Commit);
        }
        if self.kw("rollback") {
            let _ = self.kw("work");
            return Ok(Statement::Rollback);
        }
        Err(SqlError::Parse(format!("unrecognized statement start: {:?}", self.peek())))
    }

    // ---- DDL ----

    fn data_type(&mut self) -> Result<(DataType, String)> {
        let base = self.ident()?;
        let mut text = base.to_uppercase();
        // Optional (n[,m]) suffix.
        if self.eat(&Token::LParen) {
            let mut args = Vec::new();
            loop {
                match self.bump() {
                    Some(Token::Number(n)) => args.push(n),
                    other => return Err(SqlError::Parse(format!("expected length, found {other:?}"))),
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            text = format!("{text}({})", args.join(","));
        }
        // Multi-word types: DOUBLE PRECISION.
        if base.eq_ignore_ascii_case("double") && self.kw("precision") {
            text = "DOUBLE PRECISION".to_string();
        }
        let ty = match base.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" | "serial" | "bigserial"
            | "timestamp" | "number" => DataType::Int,
            "float" | "double" | "real" | "decimal" | "numeric" | "binary_double" => DataType::Float,
            "varchar" | "char" | "text" | "string" | "clob" | "varchar2" => DataType::Str,
            "bool" | "boolean" => DataType::Bool,
            "blob" | "bytea" | "varbinary" | "binary" => DataType::Bytes,
            other => return Err(SqlError::Unsupported(format!("data type {other}"))),
        };
        Ok((ty, text))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut table_pk = Vec::new();
        loop {
            if self.kw("primary") {
                self.expect_kw("key")?;
                self.expect(&Token::LParen)?;
                loop {
                    table_pk.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else if self.kw("foreign") {
                // FOREIGN KEY (c) REFERENCES t (c): parsed and ignored (the
                // engine does not enforce FKs, like many benchmark setups).
                self.expect_kw("key")?;
                self.skip_parens()?;
                self.expect_kw("references")?;
                let _ = self.ident()?;
                if self.peek() == Some(&Token::LParen) {
                    self.skip_parens()?;
                }
            } else if self.kw("unique") {
                // UNIQUE (cols): ignored at table level (indexes cover it).
                self.skip_parens()?;
            } else {
                let col_name = self.ident()?;
                let (ty, type_text) = self.data_type()?;
                let mut not_null = false;
                let mut primary_key = false;
                loop {
                    if self.kw("not") {
                        self.expect_kw("null")?;
                        not_null = true;
                    } else if self.kw("null") {
                        // explicit NULL
                    } else if self.kw("primary") {
                        self.expect_kw("key")?;
                        primary_key = true;
                    } else if self.kw("default") {
                        // consume one literal/expr token group
                        let _ = self.primary_expr()?;
                    } else if self.kw("auto_increment") || self.kw("autoincrement") {
                        // accepted, not enforced
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef { name: col_name, ty, type_text, not_null, primary_key });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable { name, columns, primary_key: table_pk }))
    }

    fn skip_parens(&mut self) -> Result<()> {
        self.expect(&Token::LParen)?;
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                Some(Token::LParen) => depth += 1,
                Some(Token::RParen) => depth -= 1,
                Some(_) => {}
                None => return Err(SqlError::Parse("unbalanced parentheses".into())),
            }
        }
        Ok(())
    }

    fn create_index(&mut self, unique: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex { name, table, columns, unique }))
    }

    // ---- DML ----

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert { table, columns, rows }))
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let has_alias = self.kw("as")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(TableRef { name, alias })
    }

    fn select(&mut self) -> Result<Select> {
        let _ = self.kw("all");
        // SELECT list
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let has_alias = self.kw("as")
                    || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s));
                let alias = if has_alias { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        let mut from = None;
        let mut joins = Vec::new();
        if self.kw("from") {
            from = Some(self.table_ref()?);
            loop {
                let inner = self.kw("inner");
                if self.kw("join") {
                    let table = self.table_ref()?;
                    self.expect_kw("on")?;
                    let on = self.expr()?;
                    joins.push(Join { table, on });
                } else if inner {
                    return Err(SqlError::Parse("expected JOIN after INNER".into()));
                } else if self.eat(&Token::Comma) {
                    // Comma join: treated as cross join with WHERE doing the
                    // equi-join; represent as a JOIN with ON TRUE.
                    let table = self.table_ref()?;
                    joins.push(Join { table, on: Expr::Lit(Value::Bool(true)) });
                } else {
                    break;
                }
            }
        }

        let where_clause = if self.kw("where") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.kw("desc") {
                    true
                } else {
                    let _ = self.kw("asc");
                    false
                };
                order_by.push(OrderBy { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let mut limit = None;
        if self.kw("limit") {
            limit = Some(self.expr()?);
        } else if self.kw("fetch") {
            // FETCH FIRST n ROWS ONLY (Derby / Oracle / standard)
            if !(self.kw("first") || self.kw("next")) {
                return Err(SqlError::Parse("expected FIRST or NEXT after FETCH".into()));
            }
            limit = Some(self.expr()?);
            if !(self.kw("rows") || self.kw("row")) {
                return Err(SqlError::Parse("expected ROWS in FETCH clause".into()));
            }
            self.expect_kw("only")?;
        }

        let mut for_update = false;
        if self.kw("for") {
            self.expect_kw("update")?;
            for_update = true;
        }

        Ok(Select { items, from, joins, where_clause, group_by, order_by, limit, for_update })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let value = self.expr()?;
            sets.push((col, value));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update(Update { table, sets, where_clause }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_clause = if self.kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete(Delete { table, where_clause }))
    }

    // ---- Expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.kw("or") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.kw("and") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.kw("is") {
            let negated = self.kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.kw("not");
        if self.kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.kw("like") {
            let pattern = self.additive()?;
            let like = Expr::bin(BinOp::Like, left, pattern);
            return Ok(if negated { Expr::Not(Box::new(like)) } else { like });
        }
        if negated {
            return Err(SqlError::Parse("expected IN, BETWEEN or LIKE after NOT".into()));
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Concat) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Number(n)) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(|f| Expr::Lit(Value::Float(f)))
                        .map_err(|_| SqlError::Parse(format!("bad number {n}")))
                } else {
                    n.parse::<i64>()
                        .map(|i| Expr::Lit(Value::Int(i)))
                        .map_err(|_| SqlError::Parse(format!("bad number {n}")))
                }
            }
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Token::Param) => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if is_reserved(&name) {
                    return Err(SqlError::Parse(format!(
                        "keyword {name} cannot start an expression"
                    )));
                }
                // NULL / TRUE / FALSE literals
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Lit(Value::Null));
                }
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    return self.call(name);
                }
                // Qualified column?
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column { table: Some(name), name: col });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(SqlError::Parse(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn call(&mut self, name: String) -> Result<Expr> {
        self.expect(&Token::LParen)?;
        let lower = name.to_ascii_lowercase();
        let agg = match lower.as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(func) = agg {
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Agg { func, arg: None, distinct: false });
            }
            let distinct = self.kw("distinct");
            let arg = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Agg { func, arg: Some(Box::new(arg)), distinct });
        }
        // Scalar function.
        let mut args = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Expr::Func { name: lower, args })
    }
}

/// Keywords that may never appear as a bare column reference.
fn is_reserved(s: &str) -> bool {
    const KW: [&str; 14] = [
        "select", "from", "where", "group", "order", "limit", "insert", "update",
        "delete", "join", "on", "set", "values", "having",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

/// Keywords that may follow a table name / select item and therefore must
/// not be mistaken for an alias.
fn is_clause_keyword(s: &str) -> bool {
    const KW: [&str; 18] = [
        "where", "group", "order", "limit", "fetch", "for", "join", "inner", "on",
        "set", "values", "from", "and", "or", "as", "left", "right", "having",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let stmt = parse(
            "CREATE TABLE warehouse (
                w_id INT NOT NULL,
                w_name VARCHAR(10),
                w_tax FLOAT,
                w_ytd DECIMAL(12,2),
                PRIMARY KEY (w_id)
            )",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, "warehouse");
                assert_eq!(ct.columns.len(), 4);
                assert_eq!(ct.primary_key, vec!["w_id"]);
                assert!(ct.columns[0].not_null);
                assert_eq!(ct.columns[3].ty, DataType::Float);
                assert_eq!(ct.columns[1].type_text, "VARCHAR(10)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_inline_pk_and_fk() {
        let stmt = parse(
            "CREATE TABLE t (id INT PRIMARY KEY, r INT, FOREIGN KEY (r) REFERENCES other (id))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert!(ct.columns[0].primary_key);
                assert_eq!(ct.columns.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_create_index() {
        let stmt = parse("CREATE UNIQUE INDEX idx_c ON customer (c_w_id, c_last)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateIndex(CreateIndex {
                name: "idx_c".into(),
                table: "customer".into(),
                columns: vec!["c_w_id".into(), "c_last".into()],
                unique: true,
            })
        );
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, ?), (2, 'x')").unwrap();
        match stmt {
            Statement::Insert(ins) => {
                assert_eq!(ins.rows.len(), 2);
                assert_eq!(ins.rows[0][1], Expr::Param(0));
                assert_eq!(ins.rows[1][1], Expr::Lit(Value::Str("x".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_full() {
        let stmt = parse(
            "SELECT c_id, COUNT(*) AS n FROM customer WHERE c_w_id = ? AND c_last LIKE 'BAR%' \
             GROUP BY c_id ORDER BY n DESC, c_id LIMIT 10",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 2);
                assert_eq!(s.group_by.len(), 1);
                assert_eq!(s.order_by.len(), 2);
                assert!(s.order_by[0].desc);
                assert!(!s.order_by[1].desc);
                assert_eq!(s.limit, Some(Expr::Lit(Value::Int(10))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_fetch_first_syntax() {
        let stmt = parse("SELECT a FROM t ORDER BY a FETCH FIRST 5 ROWS ONLY").unwrap();
        match stmt {
            Statement::Select(s) => assert_eq!(s.limit, Some(Expr::Lit(Value::Int(5)))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_for_update() {
        let stmt = parse("SELECT * FROM t WHERE id = ? FOR UPDATE").unwrap();
        match stmt {
            Statement::Select(s) => assert!(s.for_update),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_join() {
        let stmt = parse(
            "SELECT o.o_id, c.c_last FROM orders o JOIN customer c ON o.o_c_id = c.c_id WHERE o.o_w_id = 1",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.from.as_ref().unwrap().binding(), "o");
                assert_eq!(s.joins.len(), 1);
                assert_eq!(s.joins[0].table.binding(), "c");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_update_delete() {
        let stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE id = ?").unwrap();
        match stmt {
            Statement::Update(u) => {
                assert_eq!(u.sets.len(), 2);
                assert_eq!(statement_param_count(&Statement::Update(u)), 2);
            }
            other => panic!("{other:?}"),
        }
        let stmt = parse("DELETE FROM t WHERE a BETWEEN 1 AND 10").unwrap();
        assert!(matches!(stmt, Statement::Delete(_)));
    }

    #[test]
    fn parse_txn_control() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("START TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK WORK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parse_in_between_isnull() {
        let stmt = parse(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT BETWEEN 1 AND 5 AND c IS NOT NULL",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                let conj = s.where_clause.as_ref().unwrap().conjuncts().len();
                assert_eq!(conj, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_param_ordering() {
        let stmt = parse("SELECT * FROM t WHERE a = ? AND b = ? AND c = ?").unwrap();
        assert_eq!(statement_param_count(&stmt), 3);
    }

    #[test]
    fn parse_arith_precedence() {
        let stmt = parse("SELECT 1 + 2 * 3").unwrap();
        match stmt {
            Statement::Select(s) => match &s.items[0] {
                SelectItem::Expr { expr, .. } => {
                    // Should be 1 + (2*3)
                    match expr {
                        Expr::Binary { op: BinOp::Add, right, .. } => {
                            assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                        }
                        other => panic!("{other:?}"),
                    }
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_aggregates() {
        let stmt = parse("SELECT COUNT(*), SUM(x), AVG(DISTINCT y) FROM t").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 3);
                match &s.items[2] {
                    SelectItem::Expr { expr: Expr::Agg { distinct, .. }, .. } => assert!(distinct),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reject_garbage() {
        assert!(parse("SELEKT * FROM t").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT INTO t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage something").is_err());
    }

    #[test]
    fn drop_table() {
        assert_eq!(
            parse("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable { name: "t".into(), if_exists: true }
        );
    }
}
