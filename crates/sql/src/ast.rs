//! Abstract syntax tree for the supported SQL subset.

use bp_storage::{DataType, Value};

/// A full statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    DropTable { name: String, if_exists: bool },
    Insert(Insert),
    Select(Select),
    Update(Update),
    Delete(Delete),
    Begin,
    Commit,
    Rollback,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    /// Original type text (e.g. `VARCHAR(32)`), kept for dialect rendering.
    pub type_text: String,
    pub not_null: bool,
    pub primary_key: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Table-level PRIMARY KEY (a, b) clause, if present.
    pub primary_key: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Empty means "all columns in table order".
    pub columns: Vec<String>,
    /// One or more rows of value expressions.
    pub rows: Vec<Vec<Expr>>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderBy>,
    pub limit: Option<Expr>,
    pub for_update: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in expressions.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub on: Expr,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Expression with optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    pub expr: Expr,
    pub desc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub sets: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Like,
    Concat,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// `?` placeholder with its ordinal (0-based).
    Param(usize),
    /// Column reference, optionally qualified.
    Column { table: Option<String>, name: String },
    Binary { op: BinOp, left: Box<Expr>, right: Box<Expr> },
    Neg(Box<Expr>),
    Not(Box<Expr>),
    IsNull { expr: Box<Expr>, negated: bool },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    /// Aggregate call. `None` argument means `COUNT(*)`.
    Agg { func: AggFunc, arg: Option<Box<Expr>>, distinct: bool },
    /// Scalar function call.
    Func { name: String, args: Vec<Expr> },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(l), right: Box::new(r) }
    }

    /// Split a conjunction into its top-level AND-ed terms.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { op: BinOp::And, left, right } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Count `?` placeholders in this expression.
    pub fn param_count(&self) -> usize {
        let mut max: Option<usize> = None;
        self.visit_params(&mut |i| {
            max = Some(max.map_or(i, |m: usize| m.max(i)));
        });
        max.map_or(0, |m| m + 1)
    }

    pub fn visit_params(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Param(i) => f(*i),
            Expr::Lit(_) | Expr::Column { .. } => {}
            Expr::Binary { left, right, .. } => {
                left.visit_params(f);
                right.visit_params(f);
            }
            Expr::Neg(e) | Expr::Not(e) => e.visit_params(f),
            Expr::IsNull { expr, .. } => expr.visit_params(f),
            Expr::InList { expr, list, .. } => {
                expr.visit_params(f);
                for e in list {
                    e.visit_params(f);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit_params(f);
                low.visit_params(f);
                high.visit_params(f);
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_params(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit_params(f);
                }
            }
        }
    }

    /// Does the expression contain any aggregate call?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Lit(_) | Expr::Param(_) | Expr::Column { .. } => false,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Neg(e) | Expr::Not(e) => e.has_aggregate(),
            Expr::IsNull { expr, .. } => expr.has_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::Between { expr, low, high, .. } => {
                expr.has_aggregate() || low.has_aggregate() || high.has_aggregate()
            }
            Expr::Func { args, .. } => args.iter().any(Expr::has_aggregate),
        }
    }
}

/// Count parameters across a whole statement.
pub fn statement_param_count(stmt: &Statement) -> usize {
    let mut max: Option<usize> = None;
    let mut f = |i: usize| {
        max = Some(max.map_or(i, |m: usize| m.max(i)));
    };
    let mut visit = |e: &Expr| e.visit_params(&mut f);
    match stmt {
        Statement::Insert(ins) => {
            for row in &ins.rows {
                for e in row {
                    visit(e);
                }
            }
        }
        Statement::Select(sel) => visit_select(sel, &mut visit),
        Statement::Update(u) => {
            for (_, e) in &u.sets {
                visit(e);
            }
            if let Some(w) = &u.where_clause {
                visit(w);
            }
        }
        Statement::Delete(d) => {
            if let Some(w) = &d.where_clause {
                visit(w);
            }
        }
        _ => {}
    }
    max.map_or(0, |m| m + 1)
}

fn visit_select(sel: &Select, visit: &mut impl FnMut(&Expr)) {
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            visit(expr);
        }
    }
    for j in &sel.joins {
        visit(&j.on);
    }
    if let Some(w) = &sel.where_clause {
        visit(w);
    }
    for g in &sel.group_by {
        visit(g);
    }
    for o in &sel.order_by {
        visit(&o.expr);
    }
    if let Some(l) = &sel.limit {
        visit(l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_split() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Eq, Expr::col("a"), Expr::lit(1i64)),
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Gt, Expr::col("b"), Expr::lit(2i64)),
                Expr::bin(BinOp::Lt, Expr::col("c"), Expr::lit(3i64)),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn or_is_single_conjunct() {
        let e = Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Eq, Expr::col("a"), Expr::lit(1i64)),
            Expr::bin(BinOp::Eq, Expr::col("b"), Expr::lit(2i64)),
        );
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn param_count() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Eq, Expr::col("a"), Expr::Param(0)),
            Expr::bin(BinOp::Eq, Expr::col("b"), Expr::Param(2)),
        );
        assert_eq!(e.param_count(), 3);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Agg { func: AggFunc::Count, arg: None, distinct: false };
        assert!(agg.has_aggregate());
        assert!(!Expr::col("x").has_aggregate());
        assert!(Expr::bin(BinOp::Add, agg, Expr::lit(1i64)).has_aggregate());
    }
}
