//! Scalar expression evaluation.
//!
//! NULL handling is simplified two-valued logic: comparisons involving NULL
//! evaluate to NULL, and NULL is treated as *false* in filter position. This
//! matches what the bundled benchmarks require (they never rely on
//! three-valued edge cases).

use bp_storage::{Row, TableSchema, Value};

use crate::ast::{BinOp, Expr};
use crate::error::{Result, SqlError};

/// Name-resolution and row context for evaluation. Supports multiple bound
/// tables (for joins); bindings are matched case-insensitively.
pub struct EvalScope<'a> {
    bindings: Vec<(String, &'a TableSchema)>,
    rows: Vec<&'a Row>,
    params: &'a [Value],
}

impl<'a> EvalScope<'a> {
    pub fn empty(params: &'a [Value]) -> EvalScope<'a> {
        EvalScope { bindings: Vec::new(), rows: Vec::new(), params }
    }

    pub fn single(
        binding: &str,
        schema: &'a TableSchema,
        row: &'a Row,
        params: &'a [Value],
    ) -> EvalScope<'a> {
        EvalScope {
            bindings: vec![(binding.to_ascii_lowercase(), schema)],
            rows: vec![row],
            params,
        }
    }

    pub fn multi(
        bindings: Vec<(String, &'a TableSchema)>,
        rows: Vec<&'a Row>,
        params: &'a [Value],
    ) -> EvalScope<'a> {
        debug_assert_eq!(bindings.len(), rows.len());
        EvalScope { bindings, rows, params }
    }

    /// Resolve a column reference to its current value.
    pub fn column(&self, table: Option<&str>, name: &str) -> Result<Value> {
        match table {
            Some(t) => {
                let t = t.to_ascii_lowercase();
                for (i, (binding, schema)) in self.bindings.iter().enumerate() {
                    if *binding == t {
                        let idx = schema
                            .column_index(name)
                            .map_err(|_| SqlError::Binding(format!("{t}.{name}")))?;
                        return Ok(self.rows[i][idx].clone());
                    }
                }
                Err(SqlError::Binding(format!("{t}.{name}")))
            }
            None => {
                for (i, (_, schema)) in self.bindings.iter().enumerate() {
                    if let Ok(idx) = schema.column_index(name) {
                        return Ok(self.rows[i][idx].clone());
                    }
                }
                Err(SqlError::Binding(name.to_string()))
            }
        }
    }

    pub fn param(&self, i: usize) -> Result<Value> {
        self.params
            .get(i)
            .cloned()
            .ok_or(SqlError::ParamCount { expected: i + 1, got: self.params.len() })
    }
}

/// Evaluate an expression to a value. Aggregate nodes are an error here;
/// the executor computes them separately.
pub fn eval(expr: &Expr, scope: &EvalScope<'_>) -> Result<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Param(i) => scope.param(*i),
        Expr::Column { table, name } => scope.column(table.as_deref(), name),
        Expr::Neg(e) => match eval(e, scope)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Null => Ok(Value::Null),
            other => Err(SqlError::Eval(format!("cannot negate {other}"))),
        },
        Expr::Not(e) => match truthy(&eval(e, scope)?) {
            Some(b) => Ok(Value::Bool(!b)),
            None => Ok(Value::Null),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, scope)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, scope)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval(item, scope)?;
                if !iv.is_null() && values_equal(&v, &iv) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, scope)?;
            let lo = eval(low, scope)?;
            let hi = eval(high, scope)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let inside = v >= lo && v <= hi;
            Ok(Value::Bool(inside != *negated))
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, scope),
        Expr::Agg { .. } => Err(SqlError::Eval("aggregate in scalar context".into())),
        Expr::Func { name, args } => eval_func(name, args, scope),
    }
}

/// Truthiness for filter position: Bool→bool, NULL→None (filters drop it).
pub fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        _ => Some(true),
    }
}

/// Evaluate a filter expression; NULL counts as false.
pub fn eval_filter(expr: &Expr, scope: &EvalScope<'_>) -> Result<bool> {
    Ok(truthy(&eval(expr, scope)?).unwrap_or(false))
}

fn values_equal(a: &Value, b: &Value) -> bool {
    a.cmp(b) == std::cmp::Ordering::Equal
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, scope: &EvalScope<'_>) -> Result<Value> {
    // Short-circuit logic ops.
    match op {
        BinOp::And => {
            let l = truthy(&eval(left, scope)?);
            if l == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = truthy(&eval(right, scope)?);
            return Ok(match (l, r) {
                (Some(true), Some(b)) => Value::Bool(b),
                (_, Some(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        BinOp::Or => {
            let l = truthy(&eval(left, scope)?);
            if l == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = truthy(&eval(right, scope)?);
            return Ok(match (l, r) {
                (Some(false), Some(b)) => Value::Bool(b),
                (_, Some(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        _ => {}
    }

    let l = eval(left, scope)?;
    let r = eval(right, scope)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }

    if op.is_comparison() {
        let ord = l.cmp(&r);
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::NotEq => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::LtEq => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }

    match op {
        BinOp::Like => {
            let (Value::Str(s), Value::Str(p)) = (&l, &r) else {
                return Err(SqlError::Eval("LIKE requires strings".into()));
            };
            Ok(Value::Bool(like_match(s.as_bytes(), p.as_bytes())))
        }
        BinOp::Concat => {
            let ls = value_to_text(&l);
            let rs = value_to_text(&r);
            Ok(Value::Str(ls + &rs))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &l, &r),
        _ => unreachable!(),
    }
}

fn value_to_text(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        other => other.to_string(),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let out = match op {
                BinOp::Add => a.checked_add(b).map(Value::Int),
                BinOp::Sub => a.checked_sub(b).map(Value::Int),
                BinOp::Mul => a.checked_mul(b).map(Value::Int),
                BinOp::Div => {
                    if b == 0 {
                        Some(Value::Null)
                    } else {
                        a.checked_div(b).map(Value::Int)
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Some(Value::Null)
                    } else {
                        a.checked_rem(b).map(Value::Int)
                    }
                }
                _ => unreachable!(),
            };
            out.ok_or_else(|| SqlError::Eval("integer overflow".into()))
        }
        _ => {
            let a = l
                .as_float()
                .ok_or_else(|| SqlError::Eval(format!("non-numeric operand {l}")))?;
            let b = r
                .as_float()
                .ok_or_else(|| SqlError::Eval(format!("non-numeric operand {r}")))?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

/// SQL LIKE with `%` (any sequence) and `_` (any single byte).
pub fn like_match(s: &[u8], p: &[u8]) -> bool {
    if p.is_empty() {
        return s.is_empty();
    }
    match p[0] {
        b'%' => {
            // Collapse consecutive %.
            let rest = &p[1..];
            if rest.is_empty() {
                return true;
            }
            for i in 0..=s.len() {
                if like_match(&s[i..], rest) {
                    return true;
                }
            }
            false
        }
        b'_' => !s.is_empty() && like_match(&s[1..], &p[1..]),
        c => !s.is_empty() && s[0] == c && like_match(&s[1..], &p[1..]),
    }
}

fn eval_func(name: &str, args: &[Expr], scope: &EvalScope<'_>) -> Result<Value> {
    let vals: Vec<Value> = args.iter().map(|a| eval(a, scope)).collect::<Result<_>>()?;
    match name {
        "length" | "len" | "char_length" => match vals.as_slice() {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Null] => Ok(Value::Null),
            _ => Err(SqlError::Eval("LENGTH requires one string".into())),
        },
        "lower" => match vals.as_slice() {
            [Value::Str(s)] => Ok(Value::Str(s.to_lowercase())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(SqlError::Eval("LOWER requires one string".into())),
        },
        "upper" => match vals.as_slice() {
            [Value::Str(s)] => Ok(Value::Str(s.to_uppercase())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(SqlError::Eval("UPPER requires one string".into())),
        },
        "abs" => match vals.as_slice() {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(SqlError::Eval("ABS requires one number".into())),
        },
        "coalesce" => {
            for v in vals {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "mod" => match vals.as_slice() {
            [a, b] => arith(BinOp::Mod, a, b),
            _ => Err(SqlError::Eval("MOD requires two arguments".into())),
        },
        "substr" | "substring" => match vals.as_slice() {
            [Value::Str(s), Value::Int(start)] => {
                let start = (*start - 1).max(0) as usize;
                Ok(Value::Str(s.chars().skip(start).collect()))
            }
            [Value::Str(s), Value::Int(start), Value::Int(len)] => {
                let start = (*start - 1).max(0) as usize;
                let len = (*len).max(0) as usize;
                Ok(Value::Str(s.chars().skip(start).take(len).collect()))
            }
            [Value::Null, ..] => Ok(Value::Null),
            _ => Err(SqlError::Eval("SUBSTR requires (string, start[, len])".into())),
        },
        other => Err(SqlError::Unsupported(format!("function {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::ast::{SelectItem, Statement};

    fn eval_str(expr_sql: &str, params: &[Value]) -> Result<Value> {
        let stmt = parse(&format!("SELECT {expr_sql}")).unwrap();
        let Statement::Select(sel) = stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        let scope = EvalScope::empty(params);
        eval(expr, &scope)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3", &[]).unwrap(), Value::Int(7));
        assert_eq!(eval_str("(1 + 2) * 3", &[]).unwrap(), Value::Int(9));
        assert_eq!(eval_str("7 / 2", &[]).unwrap(), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2", &[]).unwrap(), Value::Float(3.5));
        assert_eq!(eval_str("7 % 3", &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_str("-5", &[]).unwrap(), Value::Int(-5));
        assert_eq!(eval_str("1 / 0", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_str("1 < 2", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("2 <= 2", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'a' <> 'b'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("1 = 1.0", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_str("NULL + 1", &[]).unwrap(), Value::Null);
        assert_eq!(eval_str("NULL = NULL", &[]).unwrap(), Value::Null);
        assert_eq!(eval_str("NULL IS NULL", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("1 IS NOT NULL", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn logic_short_circuit() {
        assert_eq!(eval_str("FALSE AND (1/0 = 1)", &[]).unwrap(), Value::Bool(false));
        assert_eq!(eval_str("TRUE OR (1/0 = 1)", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NOT FALSE", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NULL AND TRUE", &[]).unwrap(), Value::Null);
        assert_eq!(eval_str("NULL OR TRUE", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_and_between() {
        assert_eq!(eval_str("2 IN (1, 2, 3)", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("5 NOT IN (1, 2)", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("2 BETWEEN 1 AND 3", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("0 NOT BETWEEN 1 AND 3", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert_eq!(eval_str("'BARBAR' LIKE 'BAR%'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'hello' LIKE 'h_llo'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'hello' LIKE '%ell%'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'hello' NOT LIKE 'x%'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'' LIKE '%'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'abc' LIKE 'abc'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'abc' LIKE 'ab'", &[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn params() {
        assert_eq!(
            eval_str("? + ?", &[Value::Int(3), Value::Int(4)]).unwrap(),
            Value::Int(7)
        );
        assert!(matches!(
            eval_str("?", &[]).unwrap_err(),
            SqlError::ParamCount { .. }
        ));
    }

    #[test]
    fn functions() {
        assert_eq!(eval_str("LENGTH('abc')", &[]).unwrap(), Value::Int(3));
        assert_eq!(eval_str("LOWER('AbC')", &[]).unwrap(), Value::Str("abc".into()));
        assert_eq!(eval_str("UPPER('x')", &[]).unwrap(), Value::Str("X".into()));
        assert_eq!(eval_str("ABS(-4)", &[]).unwrap(), Value::Int(4));
        assert_eq!(eval_str("COALESCE(NULL, NULL, 5)", &[]).unwrap(), Value::Int(5));
        assert_eq!(eval_str("SUBSTR('hello', 2, 3)", &[]).unwrap(), Value::Str("ell".into()));
        assert_eq!(eval_str("MOD(10, 3)", &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_str("'a' || 'b' || 1", &[]).unwrap(), Value::Str("ab1".into()));
    }

    #[test]
    fn column_resolution() {
        use bp_storage::{Column, DataType, TableSchema};
        let schema = TableSchema::new(
            "t",
            vec![Column::new("a", DataType::Int), Column::new("b", DataType::Str)],
            &["a"],
        )
        .unwrap();
        let row = vec![Value::Int(1), Value::Str("x".into())];
        let scope = EvalScope::single("t", &schema, &row, &[]);
        assert_eq!(scope.column(None, "a").unwrap(), Value::Int(1));
        assert_eq!(scope.column(Some("T"), "B").unwrap(), Value::Str("x".into()));
        assert!(scope.column(Some("z"), "a").is_err());
        assert!(scope.column(None, "nope").is_err());
    }

    #[test]
    fn integer_overflow_detected() {
        let e = eval_str("9223372036854775807 + 1", &[]).unwrap_err();
        assert!(matches!(e, SqlError::Eval(_)));
    }
}
