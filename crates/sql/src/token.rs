//! SQL lexer.

use crate::error::{Result, SqlError};

/// A lexical token. Keywords are returned as `Ident` and matched
/// case-insensitively by the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare or quoted identifier (quoted identifiers preserve case).
    Ident(String),
    /// Numeric literal (integer or decimal), kept as text.
    Number(String),
    /// String literal with escapes already processed.
    Str(String),
    /// A `?` parameter placeholder.
    Param,
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// String concatenation `||`.
    Concat,
    Semicolon,
}

impl Token {
    /// True if the token is this keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(SqlError::Parse("unterminated block comment".into()));
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        break;
                    }
                    j += 1;
                }
                i = j + 2;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'.' if !bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) => {
                out.push(Token::Dot);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                i += 1;
            }
            b'?' => {
                out.push(Token::Param);
                i += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token::Concat);
                i += 2;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            b'<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        out.push(Token::LtEq);
                        i += 2;
                    }
                    Some(b'>') => {
                        out.push(Token::NotEq);
                        i += 2;
                    }
                    _ => {
                        out.push(Token::Lt);
                        i += 1;
                    }
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                // String literal; '' escapes a quote.
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(SqlError::Parse("unterminated string literal".into()));
                    }
                    if bytes[j] == b'\'' {
                        if bytes.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                out.push(Token::Str(s));
                i = j;
            }
            b'"' | b'`' => {
                // Quoted identifier (double quotes or MySQL backticks).
                let quote = c;
                let mut j = i + 1;
                let start = j;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SqlError::Parse("unterminated quoted identifier".into()));
                }
                let name = std::str::from_utf8(&bytes[start..j])
                    .map_err(|_| SqlError::Parse("invalid utf-8 in identifier".into()))?;
                out.push(Token::Ident(name.to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || (c == b'.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                // exponent
                if i < bytes.len() && matches!(bytes[i], b'e' | b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && matches!(bytes[j], b'+' | b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                out.push(Token::Number(text.to_string()));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                out.push(Token::Ident(text.to_string()));
            }
            other => {
                return Err(SqlError::Parse(format!(
                    "unexpected character '{}' at byte {i}",
                    other as char
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = lex("SELECT a, b FROM t WHERE a = ? AND b >= 10.5").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Param));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Number("10.5".into())));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = lex("\"MyCol\" `other`").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("MyCol".into()), Token::Ident("other".into())]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT 1 -- trailing\n + /* mid */ 2").unwrap();
        assert_eq!(toks.len(), 4); // SELECT 1 + 2
    }

    #[test]
    fn operators() {
        let toks = lex("a <> b != c <= d >= e || f").unwrap();
        assert_eq!(
            toks.iter().filter(|t| **t == Token::NotEq).count(),
            2
        );
        assert!(toks.contains(&Token::Concat));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex("/* open").is_err());
    }

    #[test]
    fn qualified_name_and_decimal() {
        let toks = lex("t.c 1.5 .5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("c".into()),
                Token::Number("1.5".into()),
                Token::Number(".5".into()),
            ]
        );
    }
}
