//! SQL-dialect management.
//!
//! OLTP-Bench ports benchmarks across DBMSs by letting experts provide
//! *human-written dialect translations* for DDL and DML rather than relying
//! on automatic rewriting (§2.1). This module reproduces that mechanism:
//!
//! 1. [`Dialect`] renders a canonical [`Statement`] into a target system's
//!    SQL text (type names, LIMIT vs FETCH FIRST, identifier quoting).
//! 2. [`StatementCatalog`] stores named statements with optional per-dialect
//!    overrides — the hand-written variants contributed by system experts.
//!
//! Every rendered statement parses back through our front end, which the
//! dialect tests verify for the whole benchmark suite.

use std::collections::HashMap;

use bp_storage::{DataType, Value};

use crate::ast::*;

/// A target SQL dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    MySql,
    Postgres,
    Derby,
    Oracle,
}

impl Dialect {
    pub fn name(self) -> &'static str {
        match self {
            Dialect::MySql => "mysql",
            Dialect::Postgres => "postgres",
            Dialect::Derby => "derby",
            Dialect::Oracle => "oracle",
        }
    }

    pub fn by_name(name: &str) -> Option<Dialect> {
        match name.to_ascii_lowercase().as_str() {
            "mysql" => Some(Dialect::MySql),
            "postgres" | "postgresql" => Some(Dialect::Postgres),
            "derby" => Some(Dialect::Derby),
            "oracle" => Some(Dialect::Oracle),
            _ => None,
        }
    }

    pub fn all() -> [Dialect; 4] {
        [Dialect::MySql, Dialect::Postgres, Dialect::Derby, Dialect::Oracle]
    }

    fn quote(self, ident: &str) -> String {
        // Only quote when necessary (reserved-ish or mixed case).
        let simple = ident
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if simple {
            return ident.to_string();
        }
        match self {
            Dialect::MySql => format!("`{ident}`"),
            _ => format!("\"{ident}\""),
        }
    }

    fn type_name(self, ty: DataType, original: &str) -> String {
        // Preserve length info like VARCHAR(32) where the target supports it.
        let up = original.to_uppercase();
        match (self, ty) {
            (Dialect::MySql, DataType::Int) => "BIGINT".into(),
            (Dialect::MySql, DataType::Float) => "DOUBLE".into(),
            (Dialect::MySql, DataType::Str) if up.starts_with("VARCHAR") || up.starts_with("CHAR") => up,
            (Dialect::MySql, DataType::Str) => "TEXT".into(),
            (Dialect::MySql, DataType::Bool) => "BOOLEAN".into(),
            (Dialect::MySql, DataType::Bytes) => "BLOB".into(),

            (Dialect::Postgres, DataType::Int) => "BIGINT".into(),
            (Dialect::Postgres, DataType::Float) => "DOUBLE PRECISION".into(),
            (Dialect::Postgres, DataType::Str) if up.starts_with("VARCHAR") => up,
            (Dialect::Postgres, DataType::Str) => "TEXT".into(),
            (Dialect::Postgres, DataType::Bool) => "BOOLEAN".into(),
            (Dialect::Postgres, DataType::Bytes) => "BYTEA".into(),

            (Dialect::Derby, DataType::Int) => "BIGINT".into(),
            (Dialect::Derby, DataType::Float) => "DOUBLE".into(),
            (Dialect::Derby, DataType::Str) if up.starts_with("VARCHAR") || up.starts_with("CHAR") => up,
            (Dialect::Derby, DataType::Str) => "VARCHAR(32672)".into(),
            (Dialect::Derby, DataType::Bool) => "BOOLEAN".into(),
            (Dialect::Derby, DataType::Bytes) => "BLOB".into(),

            (Dialect::Oracle, DataType::Int) => "NUMBER(19)".into(),
            (Dialect::Oracle, DataType::Float) => "BINARY_DOUBLE".into(),
            (Dialect::Oracle, DataType::Str) if up.starts_with("VARCHAR") => {
                up.replacen("VARCHAR", "VARCHAR2", 1)
            }
            (Dialect::Oracle, DataType::Str) => "VARCHAR2(4000)".into(),
            (Dialect::Oracle, DataType::Bool) => "NUMBER(1)".into(),
            (Dialect::Oracle, DataType::Bytes) => "BLOB".into(),
        }
    }

    fn uses_fetch_first(self) -> bool {
        matches!(self, Dialect::Derby | Dialect::Oracle)
    }

    /// Render a canonical statement in this dialect.
    pub fn render(self, stmt: &Statement) -> String {
        match stmt {
            Statement::CreateTable(ct) => self.render_create_table(ct),
            Statement::CreateIndex(ci) => format!(
                "CREATE {}INDEX {} ON {} ({})",
                if ci.unique { "UNIQUE " } else { "" },
                self.quote(&ci.name),
                self.quote(&ci.table),
                ci.columns.iter().map(|c| self.quote(c)).collect::<Vec<_>>().join(", ")
            ),
            Statement::DropTable { name, if_exists } => {
                // Derby/Oracle have no IF EXISTS; experts drop unconditionally.
                if *if_exists && matches!(self, Dialect::MySql | Dialect::Postgres) {
                    format!("DROP TABLE IF EXISTS {}", self.quote(name))
                } else {
                    format!("DROP TABLE {}", self.quote(name))
                }
            }
            Statement::Insert(ins) => self.render_insert(ins),
            Statement::Select(sel) => self.render_select(sel),
            Statement::Update(u) => {
                let sets = u
                    .sets
                    .iter()
                    .map(|(c, e)| format!("{} = {}", self.quote(c), self.render_expr(e)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut s = format!("UPDATE {} SET {sets}", self.quote(&u.table));
                if let Some(w) = &u.where_clause {
                    s.push_str(&format!(" WHERE {}", self.render_expr(w)));
                }
                s
            }
            Statement::Delete(d) => {
                let mut s = format!("DELETE FROM {}", self.quote(&d.table));
                if let Some(w) = &d.where_clause {
                    s.push_str(&format!(" WHERE {}", self.render_expr(w)));
                }
                s
            }
            Statement::Begin => match self {
                Dialect::MySql => "START TRANSACTION".into(),
                _ => "BEGIN".into(),
            },
            Statement::Commit => "COMMIT".into(),
            Statement::Rollback => "ROLLBACK".into(),
        }
    }

    fn render_create_table(self, ct: &CreateTable) -> String {
        let mut parts = Vec::new();
        for c in &ct.columns {
            let mut s = format!("{} {}", self.quote(&c.name), self.type_name(c.ty, &c.type_text));
            if c.not_null || c.primary_key {
                s.push_str(" NOT NULL");
            }
            if c.primary_key {
                s.push_str(" PRIMARY KEY");
            }
            parts.push(s);
        }
        if !ct.primary_key.is_empty() {
            parts.push(format!(
                "PRIMARY KEY ({})",
                ct.primary_key.iter().map(|c| self.quote(c)).collect::<Vec<_>>().join(", ")
            ));
        }
        format!("CREATE TABLE {} ({})", self.quote(&ct.name), parts.join(", "))
    }

    fn render_insert(self, ins: &Insert) -> String {
        let cols = if ins.columns.is_empty() {
            String::new()
        } else {
            format!(
                " ({})",
                ins.columns.iter().map(|c| self.quote(c)).collect::<Vec<_>>().join(", ")
            )
        };
        let rows = ins
            .rows
            .iter()
            .map(|r| {
                format!(
                    "({})",
                    r.iter().map(|e| self.render_expr(e)).collect::<Vec<_>>().join(", ")
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!("INSERT INTO {}{cols} VALUES {rows}", self.quote(&ins.table))
    }

    fn render_select(self, sel: &Select) -> String {
        let items = sel
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::Expr { expr, alias } => {
                    let e = self.render_expr(expr);
                    match alias {
                        Some(a) => format!("{e} AS {}", self.quote(a)),
                        None => e,
                    }
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        let mut s = format!("SELECT {items}");
        if let Some(from) = &sel.from {
            s.push_str(&format!(" FROM {}", self.render_table_ref(from)));
            for j in &sel.joins {
                s.push_str(&format!(
                    " JOIN {} ON {}",
                    self.render_table_ref(&j.table),
                    self.render_expr(&j.on)
                ));
            }
        }
        if let Some(w) = &sel.where_clause {
            s.push_str(&format!(" WHERE {}", self.render_expr(w)));
        }
        if !sel.group_by.is_empty() {
            let g = sel.group_by.iter().map(|e| self.render_expr(e)).collect::<Vec<_>>().join(", ");
            s.push_str(&format!(" GROUP BY {g}"));
        }
        if !sel.order_by.is_empty() {
            let o = sel
                .order_by
                .iter()
                .map(|ob| {
                    format!(
                        "{}{}",
                        self.render_expr(&ob.expr),
                        if ob.desc { " DESC" } else { "" }
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(" ORDER BY {o}"));
        }
        if let Some(l) = &sel.limit {
            if self.uses_fetch_first() {
                s.push_str(&format!(" FETCH FIRST {} ROWS ONLY", self.render_expr(l)));
            } else {
                s.push_str(&format!(" LIMIT {}", self.render_expr(l)));
            }
        }
        if sel.for_update {
            s.push_str(" FOR UPDATE");
        }
        s
    }

    fn render_table_ref(self, t: &TableRef) -> String {
        match &t.alias {
            Some(a) => format!("{} {}", self.quote(&t.name), self.quote(a)),
            None => self.quote(&t.name),
        }
    }

    fn render_expr(self, e: &Expr) -> String {
        match e {
            Expr::Lit(v) => render_value(v),
            Expr::Param(_) => "?".to_string(),
            Expr::Column { table, name } => match table {
                Some(t) => format!("{}.{}", self.quote(t), self.quote(name)),
                None => self.quote(name),
            },
            Expr::Binary { op, left, right } => {
                format!("({} {} {})", self.render_expr(left), render_op(*op), self.render_expr(right))
            }
            Expr::Neg(x) => format!("(-{})", self.render_expr(x)),
            Expr::Not(x) => format!("(NOT {})", self.render_expr(x)),
            Expr::IsNull { expr, negated } => format!(
                "({} IS {}NULL)",
                self.render_expr(expr),
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList { expr, list, negated } => format!(
                "({} {}IN ({}))",
                self.render_expr(expr),
                if *negated { "NOT " } else { "" },
                list.iter().map(|e| self.render_expr(e)).collect::<Vec<_>>().join(", ")
            ),
            Expr::Between { expr, low, high, negated } => format!(
                "({} {}BETWEEN {} AND {})",
                self.render_expr(expr),
                if *negated { "NOT " } else { "" },
                self.render_expr(low),
                self.render_expr(high)
            ),
            Expr::Agg { func, arg, distinct } => {
                let f = match func {
                    AggFunc::Count => "COUNT",
                    AggFunc::Sum => "SUM",
                    AggFunc::Avg => "AVG",
                    AggFunc::Min => "MIN",
                    AggFunc::Max => "MAX",
                };
                match arg {
                    None => format!("{f}(*)"),
                    Some(a) => format!(
                        "{f}({}{})",
                        if *distinct { "DISTINCT " } else { "" },
                        self.render_expr(a)
                    ),
                }
            }
            Expr::Func { name, args } => format!(
                "{}({})",
                name.to_uppercase(),
                args.iter().map(|a| self.render_expr(a)).collect::<Vec<_>>().join(", ")
            ),
        }
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        other => other.to_string(),
    }
}

fn render_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "=",
        BinOp::NotEq => "<>",
        BinOp::Lt => "<",
        BinOp::LtEq => "<=",
        BinOp::Gt => ">",
        BinOp::GtEq => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
        BinOp::Like => "LIKE",
        BinOp::Concat => "||",
    }
}

/// A catalog of named statements with per-dialect human-written overrides —
/// OLTP-Bench's dialect files, in code.
#[derive(Debug, Default, Clone)]
pub struct StatementCatalog {
    canonical: HashMap<String, String>,
    overrides: HashMap<(String, Dialect), String>,
}

impl StatementCatalog {
    pub fn new() -> StatementCatalog {
        StatementCatalog::default()
    }

    /// Register a statement by name with its canonical SQL.
    pub fn define(&mut self, name: &str, sql: &str) -> &mut Self {
        self.canonical.insert(name.to_string(), sql.to_string());
        self
    }

    /// Provide a hand-written override for one dialect.
    pub fn override_for(&mut self, name: &str, dialect: Dialect, sql: &str) -> &mut Self {
        self.overrides.insert((name.to_string(), dialect), sql.to_string());
        self
    }

    /// Resolve the SQL text for a statement under a dialect: the expert
    /// override if present, else the canonical text rendered through the
    /// dialect's rules.
    pub fn resolve(&self, name: &str, dialect: Dialect) -> Option<String> {
        if let Some(s) = self.overrides.get(&(name.to_string(), dialect)) {
            return Some(s.clone());
        }
        let canonical = self.canonical.get(name)?;
        match crate::parser::parse(canonical) {
            Ok(stmt) => Some(dialect.render(&stmt)),
            Err(_) => Some(canonical.clone()),
        }
    }

    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.canonical.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.canonical.len()
    }

    pub fn is_empty(&self) -> bool {
        self.canonical.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn limit_rendering_differs() {
        let stmt = parse("SELECT a FROM t ORDER BY a LIMIT 5").unwrap();
        let mysql = Dialect::MySql.render(&stmt);
        let derby = Dialect::Derby.render(&stmt);
        assert!(mysql.contains("LIMIT 5"), "{mysql}");
        assert!(derby.contains("FETCH FIRST 5 ROWS ONLY"), "{derby}");
    }

    #[test]
    fn type_mapping_differs() {
        let stmt = parse("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(32), f FLOAT)").unwrap();
        let pg = Dialect::Postgres.render(&stmt);
        let ora = Dialect::Oracle.render(&stmt);
        assert!(pg.contains("DOUBLE PRECISION"), "{pg}");
        assert!(ora.contains("NUMBER(19)"), "{ora}");
        assert!(ora.contains("VARCHAR2(32)"), "{ora}");
    }

    #[test]
    fn rendered_sql_reparses_in_every_dialect() {
        let samples = [
            "SELECT a, b AS x FROM t WHERE a = ? AND b > 3 ORDER BY x DESC LIMIT 2",
            "CREATE TABLE t (id INT NOT NULL, name VARCHAR(16), PRIMARY KEY (id))",
            "INSERT INTO t (id, name) VALUES (?, ?)",
            "UPDATE t SET name = ? WHERE id = ?",
            "DELETE FROM t WHERE id BETWEEN 1 AND 10",
            "SELECT COUNT(*) AS n, grp FROM t GROUP BY grp ORDER BY n DESC",
            "SELECT o.id FROM orders o JOIN lines l ON o.id = l.oid WHERE l.qty > 0 FOR UPDATE",
        ];
        for sql in samples {
            let stmt = parse(sql).unwrap();
            for d in Dialect::all() {
                let rendered = d.render(&stmt);
                parse(&rendered).unwrap_or_else(|e| panic!("{d:?}: {rendered}: {e}"));
            }
        }
    }

    #[test]
    fn string_literal_escaped() {
        let stmt = parse("INSERT INTO t (a) VALUES ('it''s')").unwrap();
        let out = Dialect::MySql.render(&stmt);
        assert!(out.contains("'it''s'"), "{out}");
        parse(&out).unwrap();
    }

    #[test]
    fn catalog_override_wins() {
        let mut cat = StatementCatalog::new();
        cat.define("get_item", "SELECT * FROM item WHERE i_id = ? LIMIT 1");
        cat.override_for(
            "get_item",
            Dialect::Oracle,
            "SELECT * FROM item WHERE i_id = ? AND ROWNUM <= 1",
        );
        let mysql = cat.resolve("get_item", Dialect::MySql).unwrap();
        assert!(mysql.contains("LIMIT 1"), "{mysql}");
        let ora = cat.resolve("get_item", Dialect::Oracle).unwrap();
        assert!(ora.contains("ROWNUM"), "{ora}");
        assert!(cat.resolve("missing", Dialect::MySql).is_none());
    }

    #[test]
    fn catalog_renders_canonical_per_dialect() {
        let mut cat = StatementCatalog::new();
        cat.define("top", "SELECT a FROM t ORDER BY a LIMIT 3");
        let derby = cat.resolve("top", Dialect::Derby).unwrap();
        assert!(derby.contains("FETCH FIRST"), "{derby}");
    }

    #[test]
    fn dialect_name_roundtrip() {
        for d in Dialect::all() {
            assert_eq!(Dialect::by_name(d.name()), Some(d));
        }
        assert_eq!(Dialect::by_name("postgresql"), Some(Dialect::Postgres));
        assert!(Dialect::by_name("db2").is_none());
    }

    #[test]
    fn identifier_quoting() {
        let stmt = parse("SELECT \"Weird Col\" FROM t").unwrap();
        let my = Dialect::MySql.render(&stmt);
        let pg = Dialect::Postgres.render(&stmt);
        assert!(my.contains("`Weird Col`"), "{my}");
        assert!(pg.contains("\"Weird Col\""), "{pg}");
    }
}
