//! JDBC-style connections and prepared statements.
//!
//! Workers in the testbed each hold one [`Connection`] to the target
//! database, prepare the benchmark's parameterized statements once and then
//! execute them inside explicit transactions — the same structure as
//! OLTP-Bench's transaction control code over JDBC.

use std::sync::Arc;

use bp_storage::{Database, Session, Value};

use crate::ast::{statement_param_count, Statement};
use crate::error::{Result, SqlError};
use crate::exec::{execute, ResultSet, StatementResult};
use crate::parser::parse;

/// A parsed, reusable statement.
#[derive(Debug, Clone)]
pub struct Prepared {
    stmt: Statement,
    params: usize,
    sql: String,
}

impl Prepared {
    pub fn sql(&self) -> &str {
        &self.sql
    }

    pub fn param_count(&self) -> usize {
        self.params
    }

    pub fn statement(&self) -> &Statement {
        &self.stmt
    }
}

/// A session plus SQL front end; the JDBC-connection analogue.
pub struct Connection {
    session: Session,
}

impl Connection {
    pub fn open(db: &Arc<Database>) -> Connection {
        Connection { session: db.session() }
    }

    pub fn database(&self) -> &Arc<Database> {
        self.session.database()
    }

    /// Direct access to the underlying session (stored-procedure style
    /// workloads use this for hot paths).
    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }

    pub fn in_transaction(&self) -> bool {
        self.session.in_txn()
    }

    pub fn begin(&mut self) -> Result<()> {
        self.session.begin().map_err(Into::into)
    }

    pub fn commit(&mut self) -> Result<()> {
        self.session.commit().map_err(Into::into)
    }

    pub fn rollback(&mut self) -> Result<()> {
        self.session.rollback().map_err(Into::into)
    }

    /// Parse a statement for repeated execution.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let stmt = parse(sql)?;
        let params = statement_param_count(&stmt);
        Ok(Prepared { stmt, params, sql: sql.to_string() })
    }

    fn check_params(p: &Prepared, params: &[Value]) -> Result<()> {
        if params.len() != p.params {
            return Err(SqlError::ParamCount { expected: p.params, got: params.len() });
        }
        Ok(())
    }

    /// Execute a prepared statement. Runs in the current transaction, or in
    /// an autocommit transaction when none is open.
    pub fn execute_prepared(&mut self, p: &Prepared, params: &[Value]) -> Result<StatementResult> {
        Self::check_params(p, params)?;
        let needs_auto = !self.session.in_txn()
            && !matches!(
                p.stmt,
                Statement::Begin
                    | Statement::Commit
                    | Statement::Rollback
                    | Statement::CreateTable(_)
                    | Statement::CreateIndex(_)
                    | Statement::DropTable { .. }
            );
        if needs_auto {
            self.session.begin()?;
            match execute(&mut self.session, &p.stmt, params) {
                Ok(r) => {
                    self.session.commit()?;
                    Ok(r)
                }
                Err(e) => {
                    if self.session.in_txn() {
                        let _ = self.session.rollback();
                    }
                    Err(e)
                }
            }
        } else {
            execute(&mut self.session, &p.stmt, params)
        }
    }

    /// One-shot execute (parse + run).
    pub fn execute(&mut self, sql: &str, params: &[Value]) -> Result<StatementResult> {
        let p = self.prepare(sql)?;
        self.execute_prepared(&p, params)
    }

    /// One-shot query returning rows.
    pub fn query(&mut self, sql: &str, params: &[Value]) -> Result<ResultSet> {
        match self.execute(sql, params)? {
            StatementResult::Rows(rs) => Ok(rs),
            other => Err(SqlError::Eval(format!("statement did not return rows: {other:?}"))),
        }
    }

    /// Query via a prepared statement.
    pub fn query_prepared(&mut self, p: &Prepared, params: &[Value]) -> Result<ResultSet> {
        match self.execute_prepared(p, params)? {
            StatementResult::Rows(rs) => Ok(rs),
            other => Err(SqlError::Eval(format!("statement did not return rows: {other:?}"))),
        }
    }

    /// Run several semicolon-separated statements (DDL scripts).
    pub fn execute_batch(&mut self, script: &str) -> Result<()> {
        for piece in split_statements(script) {
            self.execute(&piece, &[])?;
        }
        Ok(())
    }
}

/// Split a script into statements on semicolons, respecting string literals.
pub fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in script.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                current.push(c);
            }
            ';' if !in_str => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::Personality;

    fn conn() -> Connection {
        let db = Database::new(Personality::test());
        let mut c = Connection::open(&db);
        c.execute_batch(
            "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(32), age INT);
             CREATE INDEX users_age ON users (age);",
        )
        .unwrap();
        c
    }

    #[test]
    fn autocommit_insert_and_query() {
        let mut c = conn();
        c.execute("INSERT INTO users VALUES (1, 'alice', 30)", &[]).unwrap();
        c.execute("INSERT INTO users (id, name, age) VALUES (?, ?, ?)",
            &[Value::Int(2), Value::Str("bob".into()), Value::Int(25)])
            .unwrap();
        let rs = c.query("SELECT name FROM users WHERE id = ?", &[Value::Int(2)]).unwrap();
        assert_eq!(rs.get_str(0, "name"), Some("bob"));
        assert!(!c.in_transaction());
    }

    #[test]
    fn explicit_transaction_commit() {
        let mut c = conn();
        c.begin().unwrap();
        c.execute("INSERT INTO users VALUES (1, 'x', 1)", &[]).unwrap();
        assert!(c.in_transaction());
        c.commit().unwrap();
        assert_eq!(c.query("SELECT COUNT(*) AS n FROM users", &[]).unwrap().get_int(0, "n"), Some(1));
    }

    #[test]
    fn explicit_transaction_rollback() {
        let mut c = conn();
        c.begin().unwrap();
        c.execute("INSERT INTO users VALUES (1, 'x', 1)", &[]).unwrap();
        c.rollback().unwrap();
        assert_eq!(c.query("SELECT COUNT(*) AS n FROM users", &[]).unwrap().get_int(0, "n"), Some(0));
    }

    #[test]
    fn sql_txn_control_statements() {
        let mut c = conn();
        c.execute("BEGIN", &[]).unwrap();
        c.execute("INSERT INTO users VALUES (1, 'x', 1)", &[]).unwrap();
        c.execute("COMMIT", &[]).unwrap();
        assert_eq!(c.query("SELECT COUNT(*) AS n FROM users", &[]).unwrap().get_int(0, "n"), Some(1));
    }

    #[test]
    fn prepared_reuse() {
        let mut c = conn();
        let ins = c.prepare("INSERT INTO users VALUES (?, ?, ?)").unwrap();
        assert_eq!(ins.param_count(), 3);
        for i in 0..10 {
            c.execute_prepared(&ins, &[Value::Int(i), Value::Str(format!("u{i}")), Value::Int(20 + i)])
                .unwrap();
        }
        let q = c.prepare("SELECT COUNT(*) AS n FROM users WHERE age >= ?").unwrap();
        let rs = c.query_prepared(&q, &[Value::Int(25)]).unwrap();
        assert_eq!(rs.get_int(0, "n"), Some(5));
    }

    #[test]
    fn param_count_mismatch() {
        let mut c = conn();
        let err = c
            .execute("INSERT INTO users VALUES (?, ?, ?)", &[Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, SqlError::ParamCount { expected: 3, got: 1 }));
    }

    #[test]
    fn autocommit_rolls_back_on_error() {
        let mut c = conn();
        c.execute("INSERT INTO users VALUES (1, 'a', 1)", &[]).unwrap();
        // Duplicate key in autocommit: statement fails, no txn left open.
        let err = c.execute("INSERT INTO users VALUES (1, 'b', 2)", &[]).unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)));
        assert!(!c.in_transaction());
        assert_eq!(c.query("SELECT COUNT(*) AS n FROM users", &[]).unwrap().get_int(0, "n"), Some(1));
    }

    #[test]
    fn batch_split_respects_strings() {
        let parts = split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1 ;");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("a;b"));
    }
}
