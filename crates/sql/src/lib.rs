//! `bp-sql`: the SQL front end over the embedded storage engine.
//!
//! Provides the JDBC-analogue [`Connection`] used by the benchmark
//! transaction control code, a recursive-descent parser for the SQL subset
//! the 15 bundled benchmarks need, a lightweight access-path planner, and
//! the *SQL-dialect management* layer (human-written per-DBMS variants,
//! §2.1 of the paper).

pub mod ast;
pub mod connection;
pub mod dialect;
pub mod error;
pub mod exec;
pub mod expr;
pub mod parser;
pub mod token;

pub use connection::{Connection, Prepared};
pub use dialect::{Dialect, StatementCatalog};
pub use error::{Result, SqlError};
pub use exec::{ResultSet, StatementResult};
pub use parser::parse;
