//! End-to-end bp-cluster tests: a real in-process fleet over localhost
//! sockets, plus deterministic failure-detector and straggler scenarios
//! driven through the coordinator's route extension directly.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bp_api::router::RouteExtension;
use bp_api::{http_request, http_request_text, ApiServer, Request};
use bp_cluster::{start_agent, AgentConfig, ClusterCoordinator, CoordinatorConfig, NodeState};
use bp_core::{Phase, PhaseScript, Rate, RunConfig, RunHandle};
use bp_obs::{MetricsRegistry, Severity};
use bp_sql::Connection;
use bp_storage::{Database, Personality};
use bp_util::clock::wall_clock;
use bp_util::json::Json;
use bp_util::rng::Rng;
use bp_workloads::by_name;

/// A coordinator with its `/cluster/*` routes served over a real socket
/// and the failure detector running.
fn coordinator_stack(
    heartbeat: Duration,
) -> (Arc<ClusterCoordinator>, bp_api::http::HttpServerGuard, bp_cluster::DetectorGuard) {
    let coordinator = ClusterCoordinator::new(CoordinatorConfig { heartbeat });
    let registry = Arc::new(MetricsRegistry::new());
    registry.register("cluster", coordinator.clone());
    coordinator.set_registry(registry.clone());
    let api = Arc::new(ApiServer::new().with_registry(registry));
    api.set_extension(coordinator.clone());
    let guard = api.serve_http("127.0.0.1:0").expect("bind coordinator");
    let detector = coordinator.start_detector();
    (coordinator, guard, detector)
}

struct AgentStack {
    handle: RunHandle,
    _api_guard: bp_api::http::HttpServerGuard,
    _agent: bp_cluster::AgentGuard,
    registry: Arc<MetricsRegistry>,
    addr: SocketAddr,
}

/// One full agent node: voter workload on the test engine, API server on a
/// random port, joined to the coordinator.
fn agent_stack(node: &str, coordinator: SocketAddr, heartbeat: Duration) -> AgentStack {
    let db = Database::new(Personality::test());
    let w = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    w.setup(&mut conn, 0.2, &mut Rng::new(7)).unwrap();
    let cfg = RunConfig {
        terminals: 2,
        script: PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 60.0)]),
        collect_trace: false,
        node: node.to_string(),
        ..Default::default()
    };
    let handle = bp_core::start(db, w, wall_clock(), cfg);
    let registry = Arc::new(MetricsRegistry::new());
    let api = Arc::new(ApiServer::new().with_registry(registry.clone()));
    api.register(node, handle.controller.clone());
    let api_guard = api.serve_http("127.0.0.1:0").expect("bind agent");
    let addr = api_guard.addr();
    let agent = start_agent(
        AgentConfig::new(node, coordinator, addr).with_heartbeat(heartbeat),
        handle.controller.clone(),
        &api,
        registry.clone(),
    );
    AgentStack { handle, _api_guard: api_guard, _agent: agent, registry, addr }
}

fn wait_until(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    pred()
}

/// Sum every un-commented line of a metric family in a Prometheus text
/// exposition (e.g. across `type=` label sets).
fn sum_metric(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.strip_prefix(name).map_or(false, |rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

#[test]
fn three_agent_fleet_merges_telemetry_and_splits_rate() {
    let hb = Duration::from_millis(50);
    let (coordinator, coord_guard, _detector) = coordinator_stack(hb);
    let fleet: Vec<AgentStack> =
        ["n1", "n2", "n3"].iter().map(|n| agent_stack(n, coord_guard.addr(), hb)).collect();

    // All three join and heartbeat.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let (status, body) =
                http_request(coord_guard.addr(), "GET", "/cluster/status", None).unwrap();
            status == 200 && body.get("joined").and_then(Json::as_u64) == Some(3)
        }),
        "fleet never fully joined"
    );

    // Split a fleet-wide rate: equal thirds before capacity history built up
    // is fine; the sum must be exact either way.
    let (status, body) = http_request(
        coord_guard.addr(),
        "POST",
        "/cluster/rate",
        Some(&Json::obj().set("tps", 600.0)),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let split = body.get("split").and_then(Json::as_arr).unwrap().to_vec();
    assert_eq!(split.len(), 3);
    let total: f64 = split.iter().filter_map(|s| s.get("rate").and_then(Json::as_f64)).sum();
    assert!((total - 600.0).abs() < 1e-6, "split sums to {total}");

    // Agents pick their shares up (heartbeat responses or rate push): each
    // node runs a positive fraction of the global rate and the fractions
    // sum to the whole.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let rates: Vec<f64> = fleet
                .iter()
                .filter_map(|a| match a.handle.controller.current_rate() {
                    Rate::Limited(r) => Some(r),
                    _ => None,
                })
                .collect();
            rates.len() == 3
                && rates.iter().all(|r| *r > 0.0 && *r < 600.0)
                && (rates.iter().sum::<f64>() - 600.0).abs() < 1.0
        }),
        "agents never applied their rate shares"
    );

    // Let traffic flow, then freeze the counters so merged-vs-local sums
    // are comparable.
    assert!(
        wait_until(Duration::from_secs(10), || {
            fleet.iter().all(|a| a.handle.controller.stats().status(60).committed > 0)
        }),
        "no commits on some node"
    );
    for a in &fleet {
        a.handle.controller.stop();
    }
    std::thread::sleep(Duration::from_millis(100));

    let (status, merged) =
        http_request_text(coord_guard.addr(), "GET", "/cluster/metrics", None).unwrap();
    assert_eq!(status, 200);

    // The coordinator's own gauges are in the merged view.
    assert!(
        merged.contains("bp_cluster_nodes{state=\"joined\"} 3"),
        "missing joined-nodes gauge:\n{merged}"
    );
    assert!(merged.contains("bp_cluster_heartbeats_total"));

    // Families are deduped: one HELP/TYPE header per family even though
    // three agents all export it.
    for family in ["bp_client_committed_total", "bp_client_latency_us", "bp_server_commits_total"] {
        let headers =
            merged.lines().filter(|l| l.starts_with("# TYPE") && l.contains(family)).count();
        assert_eq!(headers, 1, "family {family} has {headers} TYPE headers");
    }

    // Counters are summed across the fleet: merged committed equals the
    // sum of each agent's own exposition (counters are frozen post-stop).
    let mut local_sum = 0.0;
    for a in &fleet {
        let (_, text) = http_request_text(a.addr, "GET", "/metrics", None).unwrap();
        local_sum += sum_metric(&text, "bp_client_committed_total");
    }
    let merged_sum = sum_metric(&merged, "bp_client_committed_total");
    assert!(local_sum > 0.0);
    assert!(
        (merged_sum - local_sum).abs() < 1e-6,
        "merged {merged_sum} != sum of locals {local_sum}"
    );

    // The journal recorded the membership story.
    let events = coordinator.journal().recent(usize::MAX, Severity::Debug);
    assert!(events.iter().any(|e| e.kind == "node_join"));
    assert!(events.iter().any(|e| e.kind == "rate_resplit"));

    for a in fleet {
        a.handle.stop_and_join();
        // Registry kept alive past the scrape assertions above.
        drop(a.registry);
    }
}

#[test]
fn missed_heartbeats_mark_suspect_then_dead_and_resplit() {
    // Driven deterministically through the route extension: no sockets, no
    // real agents — "a" heartbeats, "b" goes silent.
    let hb = Duration::from_millis(40);
    let coordinator = ClusterCoordinator::new(CoordinatorConfig { heartbeat: hb });
    let post = |path: &str, body: Json| {
        coordinator.handle(&Request::post(path, body)).expect("cluster route")
    };
    let join = |node: &str| {
        post("/cluster/join", Json::obj().set("node", node).set("addr", "127.0.0.1:9"))
    };
    assert!(join("a").is_ok());
    assert!(join("b").is_ok());
    let r = post("/cluster/rate", Json::obj().set("tps", 100.0));
    assert!(r.is_ok(), "{r:?}");

    // Keep "a" fresh for > 2 intervals while "b" stays silent.
    let end = Instant::now() + 4 * hb;
    while Instant::now() < end {
        post("/cluster/heartbeat", Json::obj().set("node", "a"));
        coordinator.tick();
        std::thread::sleep(Duration::from_millis(10));
    }
    coordinator.tick();

    let status = coordinator.handle(&Request::get("/cluster/status")).unwrap();
    let state_of = |node: &str| {
        status
            .body
            .get("nodes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .find(|n| n.get("node").and_then(Json::as_str) == Some(node))
            .and_then(|n| n.get("state").and_then(Json::as_str).map(str::to_string))
            .unwrap()
    };
    assert_eq!(state_of("a"), NodeState::Joined.name());
    assert_eq!(state_of("b"), NodeState::Dead.name());

    // The dead node's share moved to the survivor.
    let rate_of = |node: &str| {
        status
            .body
            .get("nodes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .find(|n| n.get("node").and_then(Json::as_str) == Some(node))
            .and_then(|n| n.get("assigned_rate").and_then(Json::as_f64))
            .unwrap()
    };
    assert!((rate_of("a") - 100.0).abs() < 1e-6, "survivor has the full rate");

    let events = coordinator.journal().recent(usize::MAX, Severity::Debug);
    let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"node_suspect"), "{kinds:?}");
    assert!(kinds.contains(&"node_dead"), "{kinds:?}");
    let dead = events.iter().find(|e| e.kind == "node_dead").unwrap();
    assert_eq!(dead.fields.iter().find(|(k, _)| *k == "node").unwrap().1, "b");

    // A fresh heartbeat revives the dead node and re-splits again.
    post("/cluster/heartbeat", Json::obj().set("node", "b"));
    let status = coordinator.handle(&Request::get("/cluster/status")).unwrap();
    assert_eq!(status.body.get("dead").and_then(Json::as_u64), Some(0));
}

#[test]
fn cluster_slo_loop_steers_global_rate_on_merged_latency() {
    // Long heartbeat interval (nobody dies during the test) but a 1ms SLO
    // tick so the loop acts as soon as we ask it to.
    let coordinator =
        ClusterCoordinator::new(CoordinatorConfig { heartbeat: Duration::from_millis(500) });
    let post = |path: &str, body: Json| coordinator.handle(&Request::post(path, body)).unwrap();
    for n in ["a", "b"] {
        post("/cluster/join", Json::obj().set("node", n).set("addr", "127.0.0.1:9"));
    }
    // Arm: p99 limit 10ms, AIMD step 50, backoff 0.5, tick every ms.
    let r = post(
        "/cluster/slo",
        Json::obj()
            .set("target", "p99")
            .set("limit_ms", 10.0)
            .set("step", 50.0)
            .set("backoff", 0.5)
            .set("initial_rate", 1_000.0)
            .set("tick_ms", 1u64),
    );
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.body.get("active").and_then(Json::as_bool), Some(true));

    let beat = |node: &str, p99: u64| {
        post(
            "/cluster/heartbeat",
            Json::obj().set("node", node).set(
                "window",
                Json::obj()
                    .set("count", 50u64)
                    .set("p50_us", p99 / 4)
                    .set("p99_us", p99)
                    .set("throughput", 100.0),
            ),
        );
    };

    // Healthy merged latency: additive increase.
    beat("a", 2_000);
    beat("b", 2_000);
    std::thread::sleep(Duration::from_millis(3));
    coordinator.tick();
    let after_increase = coordinator.global_rate().unwrap();
    assert!((after_increase - 1_050.0).abs() < 1e-6, "{after_increase}");

    // Merged p99 blows the limit: multiplicative backoff.
    beat("a", 40_000);
    beat("b", 35_000);
    std::thread::sleep(Duration::from_millis(3));
    coordinator.tick();
    let after_backoff = coordinator.global_rate().unwrap();
    assert!((after_backoff - after_increase * 0.5).abs() < 1e-6, "{after_backoff}");

    let status = coordinator.handle(&Request::get("/cluster/slo")).unwrap();
    let adj = status.body.get("adjustments").unwrap();
    assert_eq!(adj.get("increase").and_then(Json::as_u64), Some(1));
    assert_eq!(adj.get("decrease").and_then(Json::as_u64), Some(1));

    // Disarm: loop stops, rate stays where the controller left it.
    let r = coordinator
        .handle(&Request { method: bp_api::Method::Delete, path: "/cluster/slo".into(), body: None })
        .unwrap();
    assert_eq!(r.body.get("active").and_then(Json::as_bool), Some(false));
    std::thread::sleep(Duration::from_millis(3));
    coordinator.tick();
    assert_eq!(coordinator.global_rate().unwrap(), after_backoff);
}

#[test]
fn straggler_heartbeats_become_doctor_finding() {
    let coordinator = ClusterCoordinator::new(CoordinatorConfig::default());
    let post = |path: &str, body: Json| coordinator.handle(&Request::post(path, body)).unwrap();
    for n in ["a", "b", "c"] {
        post("/cluster/join", Json::obj().set("node", n).set("addr", "127.0.0.1:9"));
    }
    let beat = |node: &str, p99: u64| {
        post(
            "/cluster/heartbeat",
            Json::obj().set("node", node).set(
                "window",
                Json::obj()
                    .set("count", 100u64)
                    .set("p50_us", 500u64)
                    .set("p99_us", p99)
                    .set("throughput", 100.0),
            ),
        );
    };
    beat("a", 2_000);
    beat("b", 2_200);
    beat("c", 30_000); // 13x the median of its peers
    coordinator.tick();
    coordinator.tick();

    let events = coordinator.journal().recent(usize::MAX, Severity::Debug);
    let straggles: Vec<_> = events.iter().filter(|e| e.kind == "node_straggler").collect();
    assert!(!straggles.is_empty(), "no straggler event emitted");
    for e in &straggles {
        assert_eq!(e.fields.iter().find(|(k, _)| *k == "node").unwrap().1, "c");
    }

    // The doctor turns the event run into a ranked straggler_node finding.
    let report = bp_obs::Report {
        version: 1,
        interval_us: 1_000_000,
        samples: Vec::new(),
        events: events.clone(),
    };
    let findings = bp_obs::diagnose(&report);
    let f = findings
        .iter()
        .find(|f| f.bottleneck == bp_obs::Bottleneck::StragglerNode)
        .expect("straggler finding");
    assert!(f.evidence.contains("node c"), "{}", f.evidence);
    assert_eq!(f.causal_kind, Some("node_straggler"));
}
