//! Cluster membership: the coordinator's view of the agent fleet.
//!
//! A deliberately simple heartbeat-driven failure detector (no gossip, no
//! quorum — one coordinator is the membership authority, the same shape as
//! OLTP-Bench's one-driver-per-node deployments):
//!
//! ```text
//!            join / heartbeat            heartbeat
//!   (new) ───────────────────▶ Joined ◀───────────── Suspect
//!                                │   missed > 1 interval │
//!                                └───────────────────────┘
//!                                        │ missed > 2 intervals
//!                                        ▼
//!                                      Dead ── heartbeat ──▶ Joined (rejoin)
//! ```
//!
//! All transitions are computed against caller-supplied timestamps so the
//! state machine is deterministic under test; the coordinator feeds it real
//! monotonic time.

use std::net::SocketAddr;

/// Failure-detector state of one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Heartbeating within one interval.
    Joined,
    /// Missed more than one heartbeat interval; still counted live (its
    /// share of the global rate is retained) pending recovery or death.
    Suspect,
    /// Missed more than two intervals; excluded from rate splits and
    /// fan-out until it heartbeats again.
    Dead,
}

impl NodeState {
    pub fn name(&self) -> &'static str {
        match self {
            NodeState::Joined => "joined",
            NodeState::Suspect => "suspect",
            NodeState::Dead => "dead",
        }
    }
}

/// Latest windowed statistics an agent reported in a heartbeat.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeWindow {
    pub count: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub throughput: f64,
    /// Trace id of the slowest recently retained span on that node (0 when
    /// the agent has no span recorder or nothing retained yet). Lets
    /// straggler findings cite a concrete exemplar request.
    pub slow_trace: u64,
}

/// One agent as the coordinator sees it.
#[derive(Debug, Clone)]
pub struct Member {
    pub id: String,
    /// The agent's control API address (its own `ApiServer` over HTTP).
    pub addr: SocketAddr,
    pub state: NodeState,
    /// Coordinator-clock timestamp of the last join/heartbeat.
    pub last_seen_us: u64,
    /// This node's share of the global rate (tx/s).
    pub assigned_rate: f64,
    /// Capacity estimate: EMA of reported window throughput. Zero until
    /// the first heartbeat carries completions.
    pub weight: f64,
    pub window: NodeWindow,
    pub heartbeats: u64,
}

/// EMA smoothing for the capacity weight: heavy enough on history to ride
/// out one noisy window, light enough to track a real capacity shift in a
/// few heartbeats.
const WEIGHT_EMA_ALPHA: f64 = 0.3;

/// Outcome of [`MembershipTable::heartbeat`] /
/// [`MembershipTable::join`] — tells the coordinator which journal event
/// to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// First time this node id was seen.
    New,
    /// Already joined; heartbeat refreshed it.
    Refreshed,
    /// Was suspect or dead; back in the live set (rates must re-split).
    Rejoined,
}

/// The coordinator's membership table plus the rate-split policy.
#[derive(Debug)]
pub struct MembershipTable {
    members: Vec<Member>,
    /// Expected heartbeat period; suspect after >1, dead after >2.
    pub heartbeat_interval_us: u64,
}

impl MembershipTable {
    pub fn new(heartbeat_interval_us: u64) -> MembershipTable {
        MembershipTable { members: Vec::new(), heartbeat_interval_us: heartbeat_interval_us.max(1) }
    }

    /// Register (or revive) a node. Keeps members sorted by id so status
    /// output and splits are deterministic.
    pub fn join(&mut self, id: &str, addr: SocketAddr, now_us: u64) -> Admission {
        match self.members.iter_mut().find(|m| m.id == id) {
            Some(m) => {
                let was = m.state;
                m.addr = addr;
                m.state = NodeState::Joined;
                m.last_seen_us = now_us;
                if was == NodeState::Joined {
                    Admission::Refreshed
                } else {
                    Admission::Rejoined
                }
            }
            None => {
                self.members.push(Member {
                    id: id.to_string(),
                    addr,
                    state: NodeState::Joined,
                    last_seen_us: now_us,
                    assigned_rate: 0.0,
                    weight: 0.0,
                    window: NodeWindow::default(),
                    heartbeats: 0,
                });
                self.members.sort_by(|a, b| a.id.cmp(&b.id));
                Admission::New
            }
        }
    }

    /// Record a heartbeat. Unknown nodes are treated as an implicit join
    /// (the coordinator may have restarted and lost the table). Updates the
    /// capacity weight from the reported window throughput.
    pub fn heartbeat(&mut self, id: &str, window: NodeWindow, now_us: u64) -> Admission {
        let admission = match self.members.iter().position(|m| m.id == id) {
            Some(_) => {
                let m = self.members.iter_mut().find(|m| m.id == id).unwrap();
                let was = m.state;
                m.state = NodeState::Joined;
                m.last_seen_us = now_us;
                if was == NodeState::Joined { Admission::Refreshed } else { Admission::Rejoined }
            }
            None => {
                // Placeholder address; the next explicit join fixes it.
                self.join(id, "127.0.0.1:0".parse().unwrap(), now_us)
            }
        };
        let m = self.members.iter_mut().find(|m| m.id == id).unwrap();
        m.heartbeats += 1;
        m.window = window;
        if window.count > 0 {
            m.weight = if m.weight == 0.0 {
                window.throughput
            } else {
                m.weight * (1.0 - WEIGHT_EMA_ALPHA) + window.throughput * WEIGHT_EMA_ALPHA
            };
        }
        admission
    }

    /// Advance the failure detector to `now_us`. Returns the transitions
    /// taken this sweep as `(node id, new state)` pairs, in id order.
    pub fn sweep(&mut self, now_us: u64) -> Vec<(String, NodeState)> {
        let interval = self.heartbeat_interval_us;
        let mut transitions = Vec::new();
        for m in &mut self.members {
            let silent = now_us.saturating_sub(m.last_seen_us);
            let next = if silent >= 2 * interval {
                NodeState::Dead
            } else if silent > interval {
                NodeState::Suspect
            } else {
                NodeState::Joined
            };
            // Only decay here; promotion back to Joined happens on heartbeat.
            if next != m.state && next != NodeState::Joined {
                m.state = next;
                transitions.push((m.id.clone(), next));
            }
        }
        transitions
    }

    /// Members not declared dead (suspects keep their traffic share — a
    /// single delayed heartbeat should not trigger a thundering re-split).
    pub fn live(&self) -> Vec<&Member> {
        self.members.iter().filter(|m| m.state != NodeState::Dead).collect()
    }

    pub fn members(&self) -> &[Member] {
        &self.members
    }

    pub fn get(&self, id: &str) -> Option<&Member> {
        self.members.iter().find(|m| m.id == id)
    }

    /// Count per state, in (joined, suspect, dead) order.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for m in &self.members {
            match m.state {
                NodeState::Joined => c.0 += 1,
                NodeState::Suspect => c.1 += 1,
                NodeState::Dead => c.2 += 1,
            }
        }
        c
    }

    /// Split `global_rate` across live members, weighted by observed
    /// capacity. Nodes with no throughput history yet get an equal share of
    /// whatever the weighted nodes don't claim — in practice: all-equal at
    /// startup, fully proportional once every node has reported.
    ///
    /// Returns `(id, rate)` pairs in id order and stores each share on the
    /// member. Dead nodes keep their stale `assigned_rate` for forensics
    /// but receive nothing.
    pub fn split_rate(&mut self, global_rate: f64) -> Vec<(String, f64)> {
        let live_ids: Vec<String> =
            self.members.iter().filter(|m| m.state != NodeState::Dead).map(|m| m.id.clone()).collect();
        if live_ids.is_empty() {
            return Vec::new();
        }
        let total_weight: f64 = self
            .members
            .iter()
            .filter(|m| m.state != NodeState::Dead)
            .map(|m| m.weight)
            .sum();
        let n = live_ids.len() as f64;
        let mut out = Vec::with_capacity(live_ids.len());
        for m in self.members.iter_mut().filter(|m| m.state != NodeState::Dead) {
            let share = if total_weight > f64::EPSILON {
                global_rate * (m.weight / total_weight)
            } else {
                global_rate / n
            };
            m.assigned_rate = share;
            out.push((m.id.clone(), share));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    const HB: u64 = 100_000; // 100ms heartbeat interval

    #[test]
    fn join_heartbeat_suspect_dead_rejoin() {
        let mut t = MembershipTable::new(HB);
        assert_eq!(t.join("a", addr(1), 0), Admission::New);
        assert_eq!(t.join("a", addr(1), 10), Admission::Refreshed);

        // Within one interval: still joined.
        assert!(t.sweep(HB).is_empty());
        assert_eq!(t.get("a").unwrap().state, NodeState::Joined);

        // >1 interval silent: suspect. Still in the live set.
        let tr = t.sweep(10 + HB + 1);
        assert_eq!(tr, vec![("a".to_string(), NodeState::Suspect)]);
        assert_eq!(t.live().len(), 1);

        // >=2 intervals silent: dead, and out of the live set.
        let tr = t.sweep(10 + 2 * HB);
        assert_eq!(tr, vec![("a".to_string(), NodeState::Dead)]);
        assert!(t.live().is_empty());

        // A heartbeat revives it.
        let adm = t.heartbeat("a", NodeWindow::default(), 3 * HB);
        assert_eq!(adm, Admission::Rejoined);
        assert_eq!(t.get("a").unwrap().state, NodeState::Joined);
        assert_eq!(t.counts(), (1, 0, 0));
    }

    #[test]
    fn sweep_reports_each_transition_once() {
        let mut t = MembershipTable::new(HB);
        t.join("a", addr(1), 0);
        assert_eq!(t.sweep(HB + 1).len(), 1);
        // Same state next sweep: no repeated transition.
        assert!(t.sweep(HB + 2).is_empty());
        assert_eq!(t.sweep(2 * HB).len(), 1);
        assert!(t.sweep(3 * HB).is_empty());
    }

    #[test]
    fn heartbeat_from_unknown_node_is_implicit_join() {
        let mut t = MembershipTable::new(HB);
        assert_eq!(t.heartbeat("ghost", NodeWindow::default(), 5), Admission::New);
        assert_eq!(t.get("ghost").unwrap().heartbeats, 1);
    }

    #[test]
    fn equal_split_without_capacity_history() {
        let mut t = MembershipTable::new(HB);
        t.join("a", addr(1), 0);
        t.join("b", addr(2), 0);
        t.join("c", addr(3), 0);
        let split = t.split_rate(3_000.0);
        assert_eq!(split.len(), 3);
        for (_, r) in &split {
            assert!((r - 1_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capacity_weighted_split_tracks_observed_throughput() {
        let mut t = MembershipTable::new(HB);
        t.join("a", addr(1), 0);
        t.join("b", addr(2), 0);
        // a reports 3x the throughput of b.
        let wa =
            NodeWindow { count: 300, p50_us: 500, p99_us: 2_000, throughput: 300.0, slow_trace: 0 };
        let wb =
            NodeWindow { count: 100, p50_us: 900, p99_us: 9_000, throughput: 100.0, slow_trace: 0 };
        t.heartbeat("a", wa, 10);
        t.heartbeat("b", wb, 10);
        let split: Vec<f64> = t.split_rate(1_000.0).into_iter().map(|(_, r)| r).collect();
        assert!((split[0] - 750.0).abs() < 1e-6, "{split:?}");
        assert!((split[1] - 250.0).abs() < 1e-6, "{split:?}");
        assert!((split.iter().sum::<f64>() - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn dead_nodes_get_no_share() {
        let mut t = MembershipTable::new(HB);
        t.join("a", addr(1), 0);
        t.join("b", addr(2), 0);
        t.sweep(5 * HB); // both dead
        t.heartbeat("a", NodeWindow::default(), 5 * HB);
        let split = t.split_rate(500.0);
        assert_eq!(split, vec![("a".to_string(), 500.0)]);
        assert_eq!(t.get("b").unwrap().state, NodeState::Dead);
    }

    #[test]
    fn weight_ema_smooths_noise() {
        let mut t = MembershipTable::new(HB);
        t.join("a", addr(1), 0);
        let w = |tp: f64| NodeWindow { count: 10, p50_us: 1, p99_us: 1, throughput: tp, ..NodeWindow::default() };
        t.heartbeat("a", w(100.0), 1);
        assert_eq!(t.get("a").unwrap().weight, 100.0);
        t.heartbeat("a", w(200.0), 2);
        let after = t.get("a").unwrap().weight;
        assert!(after > 100.0 && after < 200.0, "{after}");
        // Empty windows don't poison the estimate.
        t.heartbeat("a", NodeWindow::default(), 3);
        assert_eq!(t.get("a").unwrap().weight, after);
    }
}
