//! `bp-cluster`: multi-node coordination for the BenchPress testbed.
//!
//! OLTP-Bench scales out by running one driver process per client machine;
//! the paper's dynamic control story (throttle, mixture, SLO) then has to
//! reach *all* of them. This crate closes that gap over the existing
//! std-only HTTP stack with two roles:
//!
//! * **Agent** ([`start_agent`]) — the familiar single-node stack
//!   (workload + [`bp_core::Controller`] + [`bp_api::ApiServer`]) that
//!   joins a coordinator, heartbeats its windowed latency/throughput, and
//!   applies the rate share it is assigned. It also serves its metrics
//!   registry as structured samples on `GET /cluster/snapshot`.
//! * **Coordinator** ([`ClusterCoordinator`]) — the membership authority.
//!   It tracks agents through a joined → suspect → dead missed-heartbeat
//!   state machine ([`MembershipTable`]), splits the fleet-wide rate by
//!   observed per-node capacity, fans control commands (rate, mixture,
//!   pause/resume/stop, chaos, SLO) out to live agents, folds their
//!   registries into one deduped Prometheus exposition on
//!   `GET /cluster/metrics`, and can run a cluster-wide AIMD SLO loop on
//!   the merged windowed latency.
//!
//! Both roles mount their HTTP surface through
//! [`bp_api::router::RouteExtension`], so bp-api stays ignorant of
//! bp-cluster and either role can share a process with anything else the
//! API server hosts. Everything — transport included — remains std-only.

pub mod agent;
pub mod coordinator;
pub mod member;

pub use agent::{start_agent, AgentConfig, AgentGuard};
pub use coordinator::{
    ClusterCoordinator, ClusterSloConfig, CoordinatorConfig, DetectorGuard, FANOUT_TIMEOUT,
};
pub use member::{Admission, Member, MembershipTable, NodeState, NodeWindow};
