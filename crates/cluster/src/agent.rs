//! The cluster agent: one per benchmark node.
//!
//! An agent is just the existing single-node stack — a workload under a
//! [`bp_core::Controller`] behind a [`bp_api::ApiServer`] — plus:
//!
//! * a `GET /cluster/snapshot` route serving this node's metrics registry
//!   as structured JSON samples (the coordinator folds these into the
//!   merged `GET /cluster/metrics` exposition);
//! * a background heartbeat thread that joins the coordinator (with
//!   retry), reports the controller's windowed latency/throughput every
//!   interval, and applies the rate share the coordinator assigns.
//!
//! Crash semantics: while the node's storage engine is crashed
//! (`database().is_crashed()` — e.g. a chaos `ServerCrash`), the agent
//! *stops heartbeating*. A node that cannot commit is dead to the fleet,
//! so the coordinator's missed-heartbeat detector declares it suspect and
//! then dead, and traffic re-splits to the survivors — no special kill RPC
//! needed.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bp_api::http::http_request_timeout;
use bp_api::router::RouteExtension;
use bp_api::{ApiServer, Method, Request, Response};
use bp_core::{Controller, Rate};
use bp_obs::{MetricsRegistry, Severity};
use bp_util::json::Json;

use crate::coordinator::FANOUT_TIMEOUT;

/// How an agent reaches its coordinator and identifies itself.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Node id; becomes the workload id on this agent's API server and the
    /// member id in the coordinator's table.
    pub node: String,
    /// Coordinator control address.
    pub coordinator: SocketAddr,
    /// This agent's own control address, as the coordinator should dial it.
    pub advertise: SocketAddr,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Seconds of history the reported latency window covers.
    pub window_s: usize,
}

impl AgentConfig {
    pub fn new(node: &str, coordinator: SocketAddr, advertise: SocketAddr) -> AgentConfig {
        AgentConfig {
            node: node.to_string(),
            coordinator,
            advertise,
            heartbeat: Duration::from_millis(200),
            window_s: 2,
        }
    }

    pub fn with_heartbeat(mut self, heartbeat: Duration) -> AgentConfig {
        self.heartbeat = heartbeat;
        self
    }
}

/// The agent-side `/cluster/*` routes (mounted as the API server's route
/// extension): today just the metrics snapshot.
struct AgentRoutes {
    node: String,
    registry: Arc<MetricsRegistry>,
}

impl RouteExtension for AgentRoutes {
    fn handle(&self, req: &Request) -> Option<Response> {
        let path = req.path.split('?').next().unwrap_or("").trim_matches('/');
        match (req.method, path) {
            (Method::Get, "cluster/snapshot") => {
                let samples: Vec<Json> =
                    self.registry.snapshot().iter().map(|s| s.to_json()).collect();
                Some(Response::ok(
                    Json::obj().set("node", self.node.as_str()).set("samples", Json::Arr(samples)),
                ))
            }
            _ => None,
        }
    }
}

/// Stops the heartbeat thread on drop.
pub struct AgentGuard {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    heartbeats_sent: Arc<AtomicU64>,
}

impl AgentGuard {
    /// Heartbeats successfully delivered (2xx from the coordinator).
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent.load(Ordering::Relaxed)
    }
}

impl Drop for AgentGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Wire a node into the fleet: mount the snapshot route on its API server,
/// join the coordinator, and start heartbeating. The returned guard owns
/// the heartbeat thread.
///
/// The `controller` must be registered on `api` under `cfg.node` — that's
/// the path (`/workloads/<node>/rate`) the coordinator pushes rate shares
/// to.
pub fn start_agent(
    cfg: AgentConfig,
    controller: Controller,
    api: &Arc<ApiServer>,
    registry: Arc<MetricsRegistry>,
) -> AgentGuard {
    api.set_extension(Arc::new(AgentRoutes { node: cfg.node.clone(), registry }));
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeats_sent = Arc::new(AtomicU64::new(0));
    let flag = stop.clone();
    let sent = heartbeats_sent.clone();
    let thread = std::thread::Builder::new()
        .name(format!("bp-agent-{}", cfg.node))
        .spawn(move || heartbeat_loop(cfg, controller, flag, sent))
        .expect("spawn agent heartbeat thread");
    AgentGuard { stop, thread: Some(thread), heartbeats_sent }
}

fn heartbeat_loop(
    cfg: AgentConfig,
    controller: Controller,
    stop: Arc<AtomicBool>,
    sent: Arc<AtomicU64>,
) {
    let journal = controller.journal().clone();
    // Join with retry: the coordinator may come up after its agents.
    let join_body = Json::obj()
        .set("node", cfg.node.as_str())
        .set("addr", cfg.advertise.to_string().as_str());
    let mut joined = false;
    while !stop.load(Ordering::Relaxed) && !joined {
        match http_request_timeout(
            cfg.coordinator,
            "POST",
            "/cluster/join",
            Some(&join_body),
            FANOUT_TIMEOUT,
        ) {
            Ok((200, resp)) => {
                joined = true;
                apply_assigned_rate(&controller, &resp);
                journal.emit_with(Severity::Info, "cluster", "node_join", || {
                    (
                        format!("joined coordinator {} as {}", cfg.coordinator, cfg.node),
                        vec![("node", cfg.node.clone())],
                    )
                });
            }
            _ => std::thread::sleep(cfg.heartbeat),
        }
    }
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(cfg.heartbeat);
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // A crashed engine cannot serve its share of the fleet's load;
        // going silent is how this node tells the coordinator so.
        if controller.database().is_crashed() {
            continue;
        }
        let w = controller.stats().window_snapshot(cfg.window_s);
        // Slowest recently retained trace: the exemplar the coordinator can
        // cite if this node turns out to be the fleet's straggler.
        let slow_trace = controller.spans().and_then(|rec| {
            rec.recent(64)
                .into_iter()
                .filter(|s| s.trace_id != 0)
                .max_by_key(|s| s.total_us())
                .map(|s| s.trace_id)
        });
        let mut window = Json::obj()
            .set("count", w.count)
            .set("p50_us", w.p50_us)
            .set("p99_us", w.p99_us)
            .set("throughput", w.throughput);
        if let Some(tid) = slow_trace {
            window = window.set("slow_trace", bp_obs::format_trace_id(tid).as_str());
        }
        let body = Json::obj().set("node", cfg.node.as_str()).set("window", window);
        match http_request_timeout(
            cfg.coordinator,
            "POST",
            "/cluster/heartbeat",
            Some(&body),
            FANOUT_TIMEOUT,
        ) {
            Ok((200, resp)) => {
                sent.fetch_add(1, Ordering::Relaxed);
                apply_assigned_rate(&controller, &resp);
            }
            Ok(_) | Err(_) => {
                // Coordinator down or unreachable; keep trying — membership
                // recovery is its problem, not ours.
            }
        }
    }
}

/// Apply the coordinator's assigned rate share, if the response carries one
/// and it differs from what we're already running.
fn apply_assigned_rate(controller: &Controller, resp: &Json) {
    let Some(tps) = resp.get("assigned_rate").and_then(Json::as_f64) else {
        return;
    };
    if !tps.is_finite() || tps <= 0.0 {
        return;
    }
    match controller.current_rate() {
        Rate::Limited(cur) if (cur - tps).abs() < 1e-9 => {}
        _ => controller.set_rate(Rate::Limited(tps)),
    }
}
