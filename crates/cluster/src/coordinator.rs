//! The cluster coordinator: membership authority, control fan-out, merged
//! telemetry, and the cluster-wide SLO loop.
//!
//! The coordinator owns no workload. It mounts its `/cluster/*` routes on a
//! plain [`bp_api::ApiServer`] (via [`bp_api::router::RouteExtension`]) and
//! runs one background detector thread that:
//!
//! * sweeps the [`MembershipTable`] (joined → suspect → dead on missed
//!   heartbeats), journaling `node_suspect` / `node_dead`;
//! * re-splits the global rate across survivors whenever the live set or
//!   the global rate changes (`rate_resplit`), pushing each share to the
//!   owning agent;
//! * flags stragglers — one live node whose windowed p99 dominates the
//!   median of its peers (`node_straggler`, picked up by bp-doctor);
//! * when armed, runs AIMD on the *merged* windowed latency across the
//!   fleet and steers the global rate (`cluster_slo`).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bp_api::http::{http_request_text_timeout, http_request_timeout};
use bp_api::router::RouteExtension;
use bp_api::{Method, Request, Response, PROMETHEUS_CONTENT_TYPE};
use bp_obs::{
    merge_samples, render_samples, EventJournal, MetricsBuf, MetricsRegistry, MetricsSource,
    Sample, Severity,
};
use bp_util::json::Json;
use bp_util::sync::Mutex;

use crate::member::{Admission, MembershipTable, NodeState, NodeWindow};

/// Fan-out calls must never stall the detector behind a dead peer: a
/// coordinator tick is ~hundreds of ms, so give each agent call a fraction
/// of that.
pub const FANOUT_TIMEOUT: Duration = Duration::from_millis(500);

/// A node is a straggler when its windowed p99 is at least this multiple
/// of the median of its live peers.
const STRAGGLER_FACTOR: f64 = 3.0;

/// ...and above this floor, so an idle fleet with microsecond latencies
/// doesn't flag noise.
const STRAGGLER_FLOOR_US: u64 = 1_000;

/// Minimum windowed completions per node before it participates in the
/// straggler comparison.
const STRAGGLER_MIN_COUNT: u64 = 20;

/// Coordinator tuning.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Expected agent heartbeat period. Suspect after >1 missed interval,
    /// dead after >2 (the failure-detection contract the harness asserts).
    pub heartbeat: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig { heartbeat: Duration::from_millis(200) }
    }
}

/// Cluster-wide SLO policy: AIMD on the merged windowed latency.
#[derive(Debug, Clone)]
pub struct ClusterSloConfig {
    /// `true` steers on merged p99, `false` on merged p50.
    pub on_p99: bool,
    pub limit_us: u64,
    /// Additive increase per tick (tx/s on the *global* rate).
    pub step: f64,
    /// Multiplicative backoff factor in (0, 1).
    pub backoff: f64,
    pub min_rate: f64,
    pub max_rate: f64,
    /// Control period; defaults to 2 heartbeat intervals so every tick
    /// sees fresh windows from the whole fleet.
    pub tick_us: u64,
    /// Merged windowed completions required before acting.
    pub min_samples: u64,
}

impl ClusterSloConfig {
    fn default_with_heartbeat(heartbeat_us: u64) -> ClusterSloConfig {
        ClusterSloConfig {
            on_p99: true,
            limit_us: 50_000,
            step: 100.0,
            backoff: 0.7,
            min_rate: 50.0,
            max_rate: f64::INFINITY,
            tick_us: 2 * heartbeat_us,
            min_samples: 20,
        }
    }
}

#[derive(Debug)]
struct SloState {
    cfg: ClusterSloConfig,
    last_tick_us: u64,
    ticks: u64,
    increases: u64,
    decreases: u64,
    holds: u64,
    observed_us: u64,
}

/// The coordinator. Construct with [`ClusterCoordinator::new`], mount on an
/// [`bp_api::ApiServer`] with `set_extension`, and keep the
/// [`DetectorGuard`] from [`ClusterCoordinator::start_detector`] alive for
/// the run.
pub struct ClusterCoordinator {
    membership: Mutex<MembershipTable>,
    /// Operator-or-SLO commanded fleet-wide rate; `None` until first set.
    global_rate: Mutex<Option<f64>>,
    slo: Mutex<Option<SloState>>,
    journal: Arc<EventJournal>,
    /// Own registry, folded into `GET /cluster/metrics` alongside agents.
    registry: Mutex<Option<Arc<MetricsRegistry>>>,
    origin: Instant,
    heartbeat_us: u64,
    heartbeats_total: AtomicU64,
    resplits_total: AtomicU64,
    stragglers_total: AtomicU64,
}

/// Stops and joins the detector thread on drop.
pub struct DetectorGuard {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DetectorGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').filter_map(|kv| kv.split_once('=')).find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn window_from_json(j: &Json) -> NodeWindow {
    NodeWindow {
        count: j.get("count").and_then(Json::as_u64).unwrap_or(0),
        p50_us: j.get("p50_us").and_then(Json::as_u64).unwrap_or(0),
        p99_us: j.get("p99_us").and_then(Json::as_u64).unwrap_or(0),
        throughput: j.get("throughput").and_then(Json::as_f64).unwrap_or(0.0),
        slow_trace: j
            .get("slow_trace")
            .and_then(Json::as_str)
            .and_then(bp_obs::parse_trace_id)
            .unwrap_or(0),
    }
}

impl ClusterCoordinator {
    pub fn new(cfg: CoordinatorConfig) -> Arc<ClusterCoordinator> {
        let heartbeat_us = cfg.heartbeat.as_micros().max(1) as u64;
        Arc::new(ClusterCoordinator {
            membership: Mutex::new(MembershipTable::new(heartbeat_us)),
            global_rate: Mutex::new(None),
            slo: Mutex::new(None),
            journal: Arc::new(EventJournal::new()),
            registry: Mutex::new(None),
            origin: Instant::now(),
            heartbeat_us,
            heartbeats_total: AtomicU64::new(0),
            resplits_total: AtomicU64::new(0),
            stragglers_total: AtomicU64::new(0),
        })
    }

    /// The coordinator's own event journal (`node_join`, `node_dead`,
    /// `rate_resplit`, `node_straggler`, `cluster_slo`, …).
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Fold this registry (typically carrying the coordinator's own
    /// [`MetricsSource`]) into `GET /cluster/metrics`.
    pub fn set_registry(&self, registry: Arc<MetricsRegistry>) {
        *self.registry.lock() = Some(registry);
    }

    /// Microseconds since coordinator start — the membership clock.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    pub fn heartbeat_interval(&self) -> Duration {
        Duration::from_micros(self.heartbeat_us)
    }

    /// Set the fleet-wide rate: split across live agents by observed
    /// capacity and push each share out. Returns the split.
    pub fn set_global_rate(&self, tps: f64) -> Vec<(String, f64)> {
        *self.global_rate.lock() = Some(tps);
        self.resplit_and_fanout("operator")
    }

    pub fn global_rate(&self) -> Option<f64> {
        *self.global_rate.lock()
    }

    /// Re-split the current global rate across live members and push each
    /// share to its agent. No-op (empty) until a global rate is set.
    fn resplit_and_fanout(&self, reason: &'static str) -> Vec<(String, f64)> {
        let Some(global) = *self.global_rate.lock() else {
            return Vec::new();
        };
        let (split, targets) = {
            let mut table = self.membership.lock();
            let split = table.split_rate(global);
            let targets: Vec<(String, SocketAddr)> =
                table.live().iter().map(|m| (m.id.clone(), m.addr)).collect();
            (split, targets)
        };
        if split.is_empty() {
            return split;
        }
        self.resplits_total.fetch_add(1, Ordering::Relaxed);
        self.journal.emit_with(Severity::Info, "cluster", "rate_resplit", || {
            let shares = split
                .iter()
                .map(|(id, r)| format!("{id}={r:.1}"))
                .collect::<Vec<_>>()
                .join(" ");
            (
                format!("global rate {global:.1} tx/s re-split ({reason}): {shares}"),
                vec![
                    ("reason", reason.to_string()),
                    ("global_rate", format!("{global}")),
                    ("nodes", format!("{}", split.len())),
                ],
            )
        });
        for (id, addr) in targets {
            let share = split.iter().find(|(sid, _)| sid == &id).map(|(_, r)| *r).unwrap_or(0.0);
            let body = Json::obj().set("tps", share);
            if let Err(e) = http_request_timeout(
                addr,
                "POST",
                &format!("/workloads/{id}/rate"),
                Some(&body),
                FANOUT_TIMEOUT,
            ) {
                self.journal.emit_with(Severity::Debug, "cluster", "fanout_error", || {
                    (
                        format!("rate push to {id} ({addr}) failed: {e}"),
                        vec![("node", id.clone())],
                    )
                });
            }
        }
        split
    }

    /// One detector pass: sweep membership, journal transitions, re-split
    /// on deaths, run the straggler check, tick the SLO loop. Public so
    /// in-process tests can drive it deterministically.
    pub fn tick(&self) {
        let now = self.now_us();
        let transitions = self.membership.lock().sweep(now);
        let mut lost_node = false;
        for (id, state) in &transitions {
            match state {
                NodeState::Suspect => {
                    self.journal.emit_with(Severity::Warn, "cluster", "node_suspect", || {
                        (
                            format!("node {id} missed a heartbeat interval"),
                            vec![("node", id.clone())],
                        )
                    });
                }
                NodeState::Dead => {
                    lost_node = true;
                    self.journal.emit_with(Severity::Error, "cluster", "node_dead", || {
                        (
                            format!("node {id} missed 2 heartbeat intervals; declared dead"),
                            vec![("node", id.clone())],
                        )
                    });
                }
                NodeState::Joined => {}
            }
        }
        if lost_node {
            self.resplit_and_fanout("node_dead");
        }
        self.straggler_check();
        self.slo_tick(now);
    }

    /// Flag a live node whose windowed p99 is `STRAGGLER_FACTOR`× the
    /// median of its peers. bp-doctor folds the resulting event run into a
    /// `straggler_node` finding.
    fn straggler_check(&self) {
        let stats: Vec<(String, u64, u64)> = {
            let table = self.membership.lock();
            table
                .live()
                .iter()
                .filter(|m| m.window.count >= STRAGGLER_MIN_COUNT)
                .map(|m| (m.id.clone(), m.window.p99_us, m.window.slow_trace))
                .collect()
        };
        if stats.len() < 2 {
            return;
        }
        for (id, p99, slow_trace) in &stats {
            let mut others: Vec<u64> =
                stats.iter().filter(|(oid, _, _)| oid != id).map(|(_, p, _)| *p).collect();
            others.sort_unstable();
            let median = others[others.len() / 2];
            if *p99 >= STRAGGLER_FLOOR_US && *p99 as f64 >= STRAGGLER_FACTOR * median as f64 {
                self.stragglers_total.fetch_add(1, Ordering::Relaxed);
                self.journal.emit_with(Severity::Warn, "cluster", "node_straggler", || {
                    let mut fields = vec![
                        ("node", id.clone()),
                        ("p99_us", format!("{p99}")),
                        ("cluster_p99_us", format!("{median}")),
                    ];
                    if *slow_trace != 0 {
                        fields.push(("trace_id", bp_obs::format_trace_id(*slow_trace)));
                    }
                    (
                        format!("node {id} window p99 {p99}us vs cluster median {median}us"),
                        fields,
                    )
                });
            }
        }
    }

    /// One SLO control step, rate-limited to the configured tick period.
    fn slo_tick(&self, now: u64) {
        let mut guard = self.slo.lock();
        let Some(slo) = guard.as_mut() else { return };
        if now.saturating_sub(slo.last_tick_us) < slo.cfg.tick_us {
            return;
        }
        slo.last_tick_us = now;
        slo.ticks += 1;
        // Merged observation: count-weighted mean of each live node's
        // windowed percentile. An approximation of the true merged
        // percentile, but monotone in every node's latency — exactly what
        // a control loop needs.
        let (total_count, weighted_sum) = {
            let table = self.membership.lock();
            let mut count = 0u64;
            let mut sum = 0.0f64;
            for m in table.live() {
                let p = if slo.cfg.on_p99 { m.window.p99_us } else { m.window.p50_us };
                count += m.window.count;
                sum += m.window.count as f64 * p as f64;
            }
            (count, sum)
        };
        if total_count < slo.cfg.min_samples {
            slo.holds += 1;
            return;
        }
        let observed = weighted_sum / total_count as f64;
        slo.observed_us = observed as u64;
        let current = (*self.global_rate.lock()).unwrap_or(slo.cfg.min_rate);
        let (next, verdict) = if observed > slo.cfg.limit_us as f64 {
            slo.decreases += 1;
            ((current * slo.cfg.backoff).max(slo.cfg.min_rate), "decrease")
        } else {
            slo.increases += 1;
            ((current + slo.cfg.step).min(slo.cfg.max_rate), "increase")
        };
        self.journal.emit_with(Severity::Debug, "cluster", "cluster_slo", || {
            (
                format!(
                    "merged {} {observed:.0}us vs limit {}us: {verdict} {current:.1} -> {next:.1} tx/s",
                    if slo.cfg.on_p99 { "p99" } else { "p50" },
                    slo.cfg.limit_us,
                ),
                vec![("observed_us", format!("{observed:.0}")), ("rate", format!("{next:.1}"))],
            )
        });
        drop(guard);
        if (next - current).abs() > f64::EPSILON {
            *self.global_rate.lock() = Some(next);
            self.resplit_and_fanout("slo");
        }
    }

    /// Spawn the background detector (membership sweep + straggler check +
    /// SLO loop), ticking a few times per heartbeat interval so deaths are
    /// declared promptly after the 2-interval deadline.
    pub fn start_detector(self: &Arc<Self>) -> DetectorGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let me = self.clone();
        let flag = stop.clone();
        let period = Duration::from_micros((self.heartbeat_us / 4).max(5_000));
        let thread = std::thread::Builder::new()
            .name("bp-cluster-detector".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    me.tick();
                    std::thread::sleep(period);
                }
            })
            .expect("spawn detector thread");
        DetectorGuard { stop, thread: Some(thread) }
    }

    // ---- route handlers -------------------------------------------------

    fn join(&self, req: &Request) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let Some(node) = body.get("node").and_then(Json::as_str) else {
            return Response::error(400, "body must contain node");
        };
        let Some(addr) = body.get("addr").and_then(Json::as_str) else {
            return Response::error(400, "body must contain addr (host:port)");
        };
        let addr: SocketAddr = match addr.parse() {
            Ok(a) => a,
            Err(_) => return Response::error(400, &format!("invalid addr {addr}")),
        };
        let now = self.now_us();
        let admission = self.membership.lock().join(node, addr, now);
        let node_owned = node.to_string();
        self.journal.emit_with(Severity::Info, "cluster", "node_join", || {
            let verb = match admission {
                Admission::New => "joined",
                Admission::Rejoined => "rejoined",
                Admission::Refreshed => "re-registered",
            };
            (format!("node {node_owned} {verb} from {addr}"), vec![("node", node_owned.clone())])
        });
        if admission != Admission::Refreshed {
            self.resplit_and_fanout("node_join");
        }
        let assigned =
            self.membership.lock().get(node).map(|m| m.assigned_rate).unwrap_or(0.0);
        Response::ok(
            Json::obj()
                .set("node", node)
                .set("heartbeat_ms", self.heartbeat_us / 1_000)
                .set("assigned_rate", assigned),
        )
    }

    fn heartbeat(&self, req: &Request) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let Some(node) = body.get("node").and_then(Json::as_str) else {
            return Response::error(400, "body must contain node");
        };
        let window = body.get("window").map(window_from_json).unwrap_or_default();
        let now = self.now_us();
        self.heartbeats_total.fetch_add(1, Ordering::Relaxed);
        let admission = self.membership.lock().heartbeat(node, window, now);
        if admission == Admission::Rejoined {
            let node_owned = node.to_string();
            self.journal.emit_with(Severity::Info, "cluster", "node_join", || {
                (
                    format!("node {node_owned} resumed heartbeating; back in the live set"),
                    vec![("node", node_owned.clone())],
                )
            });
            self.resplit_and_fanout("node_rejoin");
        }
        let assigned =
            self.membership.lock().get(node).map(|m| m.assigned_rate).unwrap_or(0.0);
        let mut resp = Json::obj().set("node", node);
        if self.global_rate.lock().is_some() {
            resp = resp.set("assigned_rate", assigned);
        }
        Response::ok(resp)
    }

    fn status(&self) -> Response {
        let table = self.membership.lock();
        let nodes: Vec<Json> = table
            .members()
            .iter()
            .map(|m| {
                let mut window = Json::obj()
                    .set("count", m.window.count)
                    .set("p50_us", m.window.p50_us)
                    .set("p99_us", m.window.p99_us)
                    .set("throughput", m.window.throughput);
                if m.window.slow_trace != 0 {
                    window = window
                        .set("slow_trace", bp_obs::format_trace_id(m.window.slow_trace).as_str());
                }
                Json::obj()
                    .set("node", m.id.as_str())
                    .set("addr", m.addr.to_string().as_str())
                    .set("state", m.state.name())
                    .set("assigned_rate", m.assigned_rate)
                    .set("weight", m.weight)
                    .set("heartbeats", m.heartbeats)
                    .set("last_seen_us", m.last_seen_us)
                    .set("window", window)
            })
            .collect();
        let (joined, suspect, dead) = table.counts();
        drop(table);
        Response::ok(
            Json::obj()
                .set("heartbeat_ms", self.heartbeat_us / 1_000)
                .set(
                    "global_rate",
                    match self.global_rate() {
                        Some(r) => Json::Num(r),
                        None => Json::Null,
                    },
                )
                .set("joined", joined as u64)
                .set("suspect", suspect as u64)
                .set("dead", dead as u64)
                .set("heartbeats", self.heartbeats_total.load(Ordering::Relaxed))
                .set("resplits", self.resplits_total.load(Ordering::Relaxed))
                .set("nodes", Json::Arr(nodes)),
        )
    }

    fn set_rate(&self, req: &Request) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let tps = body
            .get("tps")
            .and_then(Json::as_f64)
            .or_else(|| body.get("rate").and_then(Json::as_f64));
        let Some(tps) = tps else {
            return Response::error(400, "body must contain tps");
        };
        if !tps.is_finite() || tps < 0.0 {
            return Response::error(400, "tps must be a finite non-negative number");
        }
        let split = self.set_global_rate(tps);
        Response::ok(
            Json::obj().set("global_rate", tps).set(
                "split",
                Json::Arr(
                    split
                        .into_iter()
                        .map(|(id, r)| Json::obj().set("node", id.as_str()).set("rate", r))
                        .collect(),
                ),
            ),
        )
    }

    /// Fan a request out to agents: `path(id)` builds the per-agent path,
    /// `body` is forwarded verbatim. `only` restricts to one node id.
    fn fanout(
        &self,
        method: &str,
        path: impl Fn(&str) -> String,
        body: Option<&Json>,
        only: Option<&str>,
    ) -> Response {
        let targets: Vec<(String, SocketAddr)> = {
            let table = self.membership.lock();
            table
                .live()
                .iter()
                .filter(|m| only.is_none_or(|id| id == m.id))
                .map(|m| (m.id.clone(), m.addr))
                .collect()
        };
        if targets.is_empty() {
            return Response::error(
                404,
                &only.map_or("no live nodes".to_string(), |id| format!("no live node {id}")),
            );
        }
        let mut results = Vec::new();
        for (id, addr) in targets {
            let item = match http_request_timeout(addr, method, &path(&id), body, FANOUT_TIMEOUT) {
                Ok((status, resp)) => Json::obj()
                    .set("node", id.as_str())
                    .set("status", status as u64)
                    .set("body", resp),
                Err(e) => {
                    self.journal.emit_with(Severity::Debug, "cluster", "fanout_error", || {
                        (
                            format!("{method} {} to {id} failed: {e}", path(&id)),
                            vec![("node", id.clone())],
                        )
                    });
                    Json::obj().set("node", id.as_str()).set("error", e.to_string().as_str())
                }
            };
            results.push(item);
        }
        Response::ok(Json::obj().set("results", Json::Arr(results)))
    }

    /// `GET /cluster/trace/{id}`: fan the trace lookup out to every live
    /// agent's `GET /trace/{id}` and merge the per-node views — stages
    /// summed across nodes, the dominant stage named on the merged
    /// breakdown. 404 only when no live node retained the trace.
    fn cluster_trace(&self, id_hex: &str) -> Response {
        let Some(id) = bp_obs::parse_trace_id(id_hex) else {
            return Response::error(
                400,
                &format!("invalid trace id {id_hex}: expected 1-16 hex digits"),
            );
        };
        let hex = bp_obs::format_trace_id(id);
        let targets: Vec<(String, SocketAddr)> = {
            let table = self.membership.lock();
            table.live().iter().map(|m| (m.id.clone(), m.addr)).collect()
        };
        let mut nodes: Vec<Json> = Vec::new();
        let mut stage_sums: Vec<(String, u64)> = Vec::new();
        let mut total_us = 0u64;
        for (nid, addr) in targets {
            match http_request_timeout(addr, "GET", &format!("/trace/{hex}"), None, FANOUT_TIMEOUT)
            {
                Ok((200, body)) => {
                    if let Some(stages) = body.get("stages").and_then(Json::as_arr) {
                        for st in stages {
                            let name = st.get("stage").and_then(Json::as_str);
                            let us = st.get("us").and_then(Json::as_u64);
                            let (Some(name), Some(us)) = (name, us) else { continue };
                            match stage_sums.iter_mut().find(|(n, _)| n == name) {
                                Some((_, sum)) => *sum += us,
                                None => stage_sums.push((name.to_string(), us)),
                            }
                        }
                    }
                    total_us += body.get("total_us").and_then(Json::as_u64).unwrap_or(0);
                    nodes.push(Json::obj().set("node", nid.as_str()).set("trace", body));
                }
                // 404 just means this node never retained the trace.
                Ok((404, _)) => {}
                Ok((status, _)) => {
                    self.journal.emit_with(Severity::Debug, "cluster", "fanout_error", || {
                        (
                            format!("trace lookup on {nid} returned {status}"),
                            vec![("node", nid.clone())],
                        )
                    });
                }
                Err(e) => {
                    self.journal.emit_with(Severity::Debug, "cluster", "fanout_error", || {
                        (
                            format!("trace lookup on {nid} failed: {e}"),
                            vec![("node", nid.clone())],
                        )
                    });
                }
            }
        }
        if nodes.is_empty() {
            return Response::error(404, &format!("trace {hex} not retained on any live node"));
        }
        let dominant = stage_sums
            .iter()
            .max_by_key(|(_, us)| *us)
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        let stages_json = Json::Arr(
            stage_sums
                .iter()
                .map(|(n, us)| Json::obj().set("stage", n.as_str()).set("us", *us))
                .collect(),
        );
        Response::ok(
            Json::obj().set("trace_id", hex.as_str()).set("nodes", Json::Arr(nodes)).set(
                "merged",
                Json::obj()
                    .set("stages", stages_json)
                    .set("total_us", total_us)
                    .set("dominant_stage", dominant.as_str()),
            ),
        )
    }

    /// `GET /cluster/metrics`: pull every live agent's metrics snapshot
    /// (structured samples, not text — no Prometheus parser needed), fold
    /// them with the coordinator's own registry, and render one exposition
    /// with families deduped and counters summed.
    fn merged_metrics(&self) -> Response {
        let targets: Vec<(String, SocketAddr)> = {
            let table = self.membership.lock();
            table.live().iter().map(|m| (m.id.clone(), m.addr)).collect()
        };
        let mut sets: Vec<Vec<Sample>> = Vec::new();
        if let Some(reg) = self.registry.lock().clone() {
            sets.push(reg.snapshot());
        }
        for (id, addr) in targets {
            match http_request_text_timeout(addr, "GET", "/cluster/snapshot", None, FANOUT_TIMEOUT)
            {
                Ok((200, text)) => {
                    let parsed = Json::parse(&text).unwrap_or(Json::Null);
                    let samples: Vec<Sample> = parsed
                        .get("samples")
                        .and_then(Json::as_arr)
                        .map(|arr| arr.iter().filter_map(Sample::from_json).collect())
                        .unwrap_or_default();
                    sets.push(samples);
                }
                Ok((status, _)) => {
                    self.journal.emit_with(Severity::Debug, "cluster", "fanout_error", || {
                        (
                            format!("snapshot from {id} returned {status}"),
                            vec![("node", id.clone())],
                        )
                    });
                }
                Err(e) => {
                    self.journal.emit_with(Severity::Debug, "cluster", "fanout_error", || {
                        (format!("snapshot from {id} failed: {e}"), vec![("node", id.clone())])
                    });
                }
            }
        }
        let merged = merge_samples(sets);
        Response::text(PROMETHEUS_CONTENT_TYPE, render_samples(&merged))
    }

    fn slo_arm(&self, req: &Request) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let mut cfg = ClusterSloConfig::default_with_heartbeat(self.heartbeat_us);
        match body.get("target").and_then(Json::as_str) {
            Some("p99") | None => cfg.on_p99 = true,
            Some("p50") => cfg.on_p99 = false,
            Some(other) => {
                return Response::error(400, &format!("unknown target {other}; known: p99, p50"))
            }
        }
        if let Some(ms) = body.get("limit_ms").and_then(Json::as_f64) {
            if !ms.is_finite() || ms <= 0.0 {
                return Response::error(400, "limit_ms must be a positive number");
            }
            cfg.limit_us = (ms * 1_000.0).round() as u64;
        }
        if let Some(v) = body.get("step").and_then(Json::as_f64) {
            cfg.step = v.max(0.0);
        }
        if let Some(v) = body.get("backoff").and_then(Json::as_f64) {
            if !(0.0..1.0).contains(&v) || v == 0.0 {
                return Response::error(400, "backoff must be in (0, 1)");
            }
            cfg.backoff = v;
        }
        if let Some(v) = body.get("min_rate").and_then(Json::as_f64) {
            cfg.min_rate = v.max(0.0);
        }
        if let Some(v) = body.get("max_rate").and_then(Json::as_f64) {
            cfg.max_rate = v;
        }
        if let Some(v) = body.get("tick_ms").and_then(Json::as_u64) {
            cfg.tick_us = v.max(1) * 1_000;
        }
        if let Some(v) = body.get("min_samples").and_then(Json::as_u64) {
            cfg.min_samples = v;
        }
        if cfg.max_rate < cfg.min_rate {
            return Response::error(400, "max_rate must be >= min_rate");
        }
        // Seed the global rate so the loop has something to adjust.
        if let Some(v) = body.get("initial_rate").and_then(Json::as_f64) {
            *self.global_rate.lock() = Some(v);
        } else if self.global_rate.lock().is_none() {
            *self.global_rate.lock() = Some(cfg.min_rate);
        }
        *self.slo.lock() = Some(SloState {
            cfg,
            last_tick_us: self.now_us(),
            ticks: 0,
            increases: 0,
            decreases: 0,
            holds: 0,
            observed_us: 0,
        });
        self.resplit_and_fanout("slo_arm");
        self.slo_status()
    }

    fn slo_disarm(&self) -> Response {
        *self.slo.lock() = None;
        self.slo_status()
    }

    fn slo_status(&self) -> Response {
        let guard = self.slo.lock();
        let body = match guard.as_ref() {
            None => Json::obj().set("active", false),
            Some(s) => Json::obj()
                .set("active", true)
                .set("target", if s.cfg.on_p99 { "p99" } else { "p50" })
                .set("limit_us", s.cfg.limit_us)
                .set("observed_us", s.observed_us)
                .set("ticks", s.ticks)
                .set(
                    "adjustments",
                    Json::obj()
                        .set("increase", s.increases)
                        .set("decrease", s.decreases)
                        .set("hold", s.holds),
                ),
        };
        drop(guard);
        let body = body.set(
            "global_rate",
            match self.global_rate() {
                Some(r) => Json::Num(r),
                None => Json::Null,
            },
        );
        Response::ok(body)
    }
}

impl RouteExtension for ClusterCoordinator {
    fn handle(&self, req: &Request) -> Option<Response> {
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (req.path.as_str(), ""),
        };
        let path = path.trim_matches('/');
        let parts: Vec<&str> = if path.is_empty() { Vec::new() } else { path.split('/').collect() };
        let resp = match (req.method, parts.as_slice()) {
            (Method::Post, ["cluster", "join"]) => self.join(req),
            (Method::Post, ["cluster", "heartbeat"]) => self.heartbeat(req),
            (Method::Get, ["cluster", "status"]) => self.status(),
            (Method::Get, ["cluster", "metrics"]) => self.merged_metrics(),
            (Method::Post, ["cluster", "rate"]) => self.set_rate(req),
            (Method::Post, ["cluster", action @ ("pause" | "resume" | "stop")]) => {
                let action = action.to_string();
                self.fanout(
                    "POST",
                    |id| format!("/workloads/{id}/{action}"),
                    Some(&Json::obj()),
                    query_param(query, "node"),
                )
            }
            (Method::Post, ["cluster", "mixture"]) => self.fanout(
                "POST",
                |id| format!("/workloads/{id}/mixture"),
                req.body.as_ref(),
                query_param(query, "node"),
            ),
            (Method::Post, ["cluster", "chaos"]) => self.fanout(
                "POST",
                |_| "/chaos".to_string(),
                req.body.as_ref(),
                query_param(query, "node"),
            ),
            (Method::Delete, ["cluster", "chaos"]) => self.fanout(
                "DELETE",
                |_| "/chaos".to_string(),
                None,
                query_param(query, "node"),
            ),
            (Method::Get, ["cluster", "trace", id]) => self.cluster_trace(id),
            (Method::Post, ["cluster", "slo"]) => self.slo_arm(req),
            (Method::Delete, ["cluster", "slo"]) => self.slo_disarm(),
            (Method::Get, ["cluster", "slo"]) => self.slo_status(),
            _ => return None,
        };
        Some(resp)
    }
}

impl MetricsSource for ClusterCoordinator {
    fn collect(&self, buf: &mut MetricsBuf) {
        let (joined, suspect, dead) = self.membership.lock().counts();
        buf.gauge(
            "bp_cluster_nodes",
            "Cluster members by failure-detector state.",
            &[("state", "joined")],
            joined as f64,
        );
        buf.gauge(
            "bp_cluster_nodes",
            "Cluster members by failure-detector state.",
            &[("state", "suspect")],
            suspect as f64,
        );
        buf.gauge(
            "bp_cluster_nodes",
            "Cluster members by failure-detector state.",
            &[("state", "dead")],
            dead as f64,
        );
        buf.gauge(
            "bp_cluster_global_rate",
            "Fleet-wide commanded rate (tx/s); 0 until set.",
            &[],
            self.global_rate().unwrap_or(0.0),
        );
        buf.counter(
            "bp_cluster_heartbeats_total",
            "Heartbeats received from agents.",
            &[],
            self.heartbeats_total.load(Ordering::Relaxed) as f64,
        );
        buf.counter(
            "bp_cluster_resplits_total",
            "Rate re-splits pushed to the fleet.",
            &[],
            self.resplits_total.load(Ordering::Relaxed) as f64,
        );
        buf.counter(
            "bp_cluster_stragglers_total",
            "Straggler detections (node_straggler events).",
            &[],
            self.stragglers_total.load(Ordering::Relaxed) as f64,
        );
        buf.gauge(
            "bp_cluster_slo_active",
            "1 while the cluster SLO loop is armed.",
            &[],
            if self.slo.lock().is_some() { 1.0 } else { 0.0 },
        );
    }
}
