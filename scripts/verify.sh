#!/usr/bin/env bash
# Tier-1 verification for the hermetic (std-only, offline) workspace.
#
#   scripts/verify.sh          # build + tests, offline
#
# The workspace has zero external dependencies, so --offline must always
# succeed; if it does not, a registry dependency has crept back in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

echo "== observability: /metrics + /trace over real HTTP =="
cargo test -q --offline --test observability

echo "== span overhead bench (smoke: asserts <100ns/span full, ~0 off) =="
BENCH_SMOKE=1 cargo bench -q --offline -p bp-bench --bench span_overhead

echo "== chaos gate bench (smoke: asserts <5ns disarmed probe) =="
BENCH_SMOKE=1 cargo bench -q --offline -p bp-bench --bench chaos_gate

echo "== resilience: fault injection + breaker dip-and-recovery over HTTP =="
cargo test -q --offline --test resilience
cargo run -q --release --offline -p bp-bench --bin harness resilience

echo "== replay: record → replay → divergence smoke (same seed ⇒ byte-identical schedule) =="
cargo test -q --offline --test replay
cargo run -q --release --offline -p bp-bench --bin harness replay

echo "== slo: closed-loop admission control — convergence + chaos backoff over HTTP =="
cargo test -q --offline -p bp-core slo
cargo run -q --release --offline -p bp-bench --bin harness slo

echo "== event journal bench (smoke: asserts <5ns disabled emit) =="
BENCH_SMOKE=1 cargo bench -q --offline -p bp-bench --bench event_overhead

echo "== doctor: chaos-induced bottlenecks named with causal events over HTTP =="
cargo run -q --release --offline -p bp-bench --bin harness doctor

echo "== recovery: crashpoint matrix + supervised restart under live load =="
cargo test -q --offline --test recovery
cargo run -q --release --offline -p bp-bench --bin harness recovery

echo "== cluster: 3-agent fleet — membership, merged telemetry, node-kill re-split =="
cargo test -q --offline -p bp-cluster
cargo run -q --release --offline -p bp-bench --bin harness cluster

echo "== trace: tail sampling retention + exemplar → /cluster/trace resolution =="
cargo test -q --offline -p bp-obs span
cargo run -q --release --offline -p bp-bench --bin harness trace

if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --all-targets -- -D warnings =="
    cargo clippy --offline --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping lint step =="
fi

echo "verify: OK"
